"""E11 — Frequency scaling and the flash wall (paper Section 4).

"Even though the flash access is very fast ... a flash access can take
several CPU cycles, depending on the CPU frequency.  Due to the high
amount of CPU access to the flash (data and code) the path from CPU to
flash is the main lever to increase the CPU system performance."

We sweep the CPU clock on the unchanged architecture, on a flash-path-fixed
variant (doubled I-cache + deeper buffers), and compare with the analytic
forward model derived from a single 180 MHz profile — the architect's view
of a future device before silicon exists.
"""

import pytest

from repro.core.optimization import (OptionEvaluator, predict_scaling,
                                     scaling_table, simulate_scaling)
from repro.soc.config import tc1797_config
from repro.workloads.engine import EngineControlScenario

from _common import emit, once

FREQS = (90, 133, 180, 270, 360)
WORK = 80_000


def fix_flash_path(config):
    config.icache.size_bytes *= 2
    config.flash.code_buffer_lines = 4
    config.flash.data_buffer_lines = 4


def run_experiment():
    scenario = EngineControlScenario()
    base = simulate_scaling(scenario, tc1797_config(), FREQS,
                            work_instructions=WORK, seed=11)
    fixed = simulate_scaling(scenario, tc1797_config(), FREQS,
                             work_instructions=WORK, seed=11,
                             configure=fix_flash_path)
    evaluator = OptionEvaluator(scenario, tc1797_config(), [],
                                work_instructions=WORK, seed=11)
    context = evaluator.run_baseline()
    predicted = predict_scaling(context, FREQS)
    return base, fixed, predicted, context


@pytest.mark.benchmark(group="e11")
def test_e11_frequency_scaling(benchmark):
    base, fixed, predicted, context = once(benchmark, run_experiment)
    lines = ["baseline architecture (simulated vs analytic forward model):"]
    lines.extend(scaling_table(base, predicted).splitlines())
    lines.append("")
    lines.append("flash path fixed (2x I-cache, 4-line buffers):")
    lines.extend(scaling_table(fixed).splitlines())
    emit("E11", "CPU frequency scaling against the flash wall", lines)

    # performance rises sub-linearly on the unchanged architecture
    by_freq = {p.frequency_mhz: p for p in base}
    ideal = 360 / FREQS[0]
    assert by_freq[360].relative_performance < 0.8 * ideal
    # the analytic model predicts the curve from one profile
    for sim, pred in zip(base, predicted):
        assert pred.relative_performance == pytest.approx(
            sim.relative_performance, rel=0.15)
    # fixing the flash path recovers scaling headroom at high frequency
    fixed_by_freq = {p.frequency_mhz: p for p in fixed}
    assert fixed_by_freq[360].cpi < by_freq[360].cpi
