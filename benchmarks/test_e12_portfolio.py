"""E12 — Portfolio ranking across the customer population (Sec. 4/5).

The architect's final deliverable: the option ranking aggregated over the
whole customer base with volume weights, checked for "negative side
effects for other possible use cases" (paper Section 4 — an option that
regresses any customer is flagged), and reduced to the Pareto frontier in
(area cost, weighted gain) space.
"""

import pytest

from repro.core.optimization import (PortfolioEvaluator, hardware_options,
                                     pareto_frontier, portfolio_table)
from repro.soc.config import tc1797_config
from repro.workloads import CustomerGenerator

from _common import emit, once

N_CUSTOMERS = 6
WORK = 60_000


def run_experiment():
    customers = CustomerGenerator(seed=42).generate(N_CUSTOMERS)
    # powertrain sells more chips: weight engine customers 3x
    weights = {c.name: (3.0 if c.domain == "engine" else 1.0)
               for c in customers}
    evaluator = PortfolioEvaluator(customers, tc1797_config(),
                                   hardware_options(), weights=weights,
                                   work_instructions=WORK, seed=12)
    entries = evaluator.evaluate()
    frontier = pareto_frontier(entries)
    return customers, entries, frontier


@pytest.mark.benchmark(group="e12")
def test_e12_portfolio_ranking(benchmark):
    customers, entries, frontier = once(benchmark, run_experiment)
    lines = [f"population: {len(customers)} customers "
             f"({', '.join(sorted({c.domain for c in customers}))}); "
             f"engine weighted 3x", ""]
    lines.extend(portfolio_table(entries).splitlines())
    lines.append("")
    lines.append("Pareto frontier (cost-ascending): "
                 + " -> ".join(e.option.key for e in frontier))
    emit("E12", "portfolio option ranking with Pareto frontier", lines)

    assert len(entries) == len(hardware_options())
    # aggregation covered every customer for every option
    for entry in entries:
        assert len(entry.per_customer_gain) == len(customers)
    # no catalog option may regress any customer beyond noise
    assert not any(entry.has_regression for entry in entries)
    # the frontier is non-trivial and cost-monotone
    assert 1 <= len(frontier) <= len(entries)
    costs = [e.option.area_cost for e in frontier]
    assert costs == sorted(costs)
    # flash-path options carry the portfolio
    best = entries[0]
    assert best.weighted_gain > 0
