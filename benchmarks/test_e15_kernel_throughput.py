"""E15 — Simulation-kernel throughput: quiescence scheduling vs naive.

The quiescence-aware kernel (idle-skip scheduling + fused hot loop) is an
*infrastructure* optimization: it must change simulation wall-clock and
nothing else.  E15 measures cycles/sec on two contrasting workloads —
engine control (CPU hot, peripherals sleeping) and an RTOS with a
wait-for-interrupt idle hook (everything sleeping between ticks) — and
asserts byte-identity of every observable before reporting a speedup.

Outputs ``BENCH_kernel.json`` at the repo root for the CI perf-smoke
lane, which compares measured speedups against the committed baseline in
``benchmarks/kernel_baseline.json`` and fails on a >25% regression.
"""

import json
import os
import time

import pytest

from repro.soc.config import tc1797_config
from repro.soc.kernel import kernel_mode
from repro.workloads import EngineControlScenario, RtosScenario

from _common import emit, once

CYCLES = 200_000
BASELINE_PATH = os.path.join(os.path.dirname(__file__),
                             "kernel_baseline.json")
BENCH_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                          "BENCH_kernel.json")

WORKLOADS = [
    ("engine", EngineControlScenario, {}),
    ("rtos_idle", RtosScenario, {"idle_halt": True}),
]


def observables(device):
    """Everything a profiling run can see; must not depend on the kernel."""
    cpu = device.soc.cpu
    return {
        "oracle": device.soc.hub.snapshot(),
        "pc": cpu.pc,
        "retired": cpu.retired,
        "halt_cycles": cpu.halt_cycles,
        "mcds_messages": device.mcds.total_messages,
        "mcds_bits": device.mcds.total_bits,
        "emem_messages": device.emem.message_count,
    }


REPEATS = 3


def run_workload(scenario, params, mode):
    """Best-of-``REPEATS`` wall time for one kernel mode.

    Each repeat builds a fresh device (runs are deterministic, so the
    observables are identical across repeats); taking the fastest leg
    filters OS scheduling noise out of the committed speedup the same way
    interval timers are read on quiet systems.
    """
    wall = None
    for _ in range(REPEATS):
        with kernel_mode(mode):
            device = scenario().build(tc1797_config(), dict(params))
        t0 = time.perf_counter()
        device.run(CYCLES)
        leg = time.perf_counter() - t0
        if wall is None or leg < wall:
            wall = leg
    return observables(device), CYCLES / wall, device.soc.sim.kernel_stats()


def run_experiment():
    results = {}
    # warm interpreter caches (imports, code objects, allocator arenas) so
    # the first timed leg is not charged for process warm-up
    with kernel_mode("naive"):
        EngineControlScenario().build(tc1797_config(), {}).run(5_000)
    for name, scenario, params in WORKLOADS:
        naive_obs, naive_cps, _ = run_workload(scenario, params, "naive")
        quiesc_obs, quiesc_cps, stats = run_workload(
            scenario, params, "quiescent")
        assert quiesc_obs == naive_obs, \
            f"{name}: quiescent kernel diverged from naive observables"
        skip = sum(e["skipped"] for e in stats["components"])
        total = sum(e["ticks"] + e["skipped"] for e in stats["components"])
        results[name] = {
            "naive_cps": naive_cps,
            "quiescent_cps": quiesc_cps,
            "speedup": quiesc_cps / naive_cps,
            "skip_ratio": skip / total if total else 0.0,
        }
    return results


@pytest.mark.benchmark(group="e15")
def test_e15_kernel_throughput(benchmark):
    data = once(benchmark, run_experiment)
    with open(BASELINE_PATH) as handle:
        baseline = json.load(handle)

    lines = [
        f"{'workload':<12}{'naive c/s':>12}{'quiesc c/s':>12}"
        f"{'speedup':>9}{'skip%':>7}{'baseline':>10}",
    ]
    for name, r in data.items():
        lines.append(
            f"{name:<12}{r['naive_cps']:>12,.0f}{r['quiescent_cps']:>12,.0f}"
            f"{r['speedup']:>8.2f}x{100 * r['skip_ratio']:>7.1f}"
            f"{baseline[name]['speedup']:>9.2f}x")
    lines += [
        "",
        f"byte-identity asserted on oracle totals, CPU state, and trace",
        f"bytes for every workload over {CYCLES} cycles.",
    ]
    emit("E15", "simulation-kernel throughput (quiescent vs naive)", lines)

    with open(BENCH_PATH, "w") as handle:
        json.dump({"cycles": CYCLES, "workloads": data}, handle,
                  indent=2, sort_keys=True)
        handle.write("\n")

    # acceptance floors (ISSUE): quiescence must actually pay for itself
    assert data["engine"]["speedup"] >= 1.3
    assert data["rtos_idle"]["speedup"] >= 3.0
    # perf smoke: >25% regression against the committed baseline fails
    for name, r in data.items():
        floor = 0.75 * baseline[name]["speedup"]
        assert r["speedup"] >= floor, \
            f"{name}: speedup {r['speedup']:.2f}x regressed below " \
            f"75% of the committed baseline ({floor:.2f}x)"
