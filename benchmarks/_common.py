"""Shared helpers for the experiment benchmarks.

Each benchmark regenerates one experiment from DESIGN.md's index and emits
its table both to stdout and to ``benchmarks/results/<exp>.txt`` so the
paper-vs-measured record in EXPERIMENTS.md can be refreshed from a run.
"""

from __future__ import annotations

import os
from typing import List

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit(exp_id: str, title: str, lines: List[str]) -> str:
    """Print and persist an experiment's output table."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    text = "\n".join([f"=== {exp_id}: {title} ==="] + list(lines)) + "\n"
    path = os.path.join(RESULTS_DIR, f"{exp_id.lower()}.txt")
    with open(path, "w") as handle:
        handle.write(text)
    print("\n" + text)
    return text


def once(benchmark, func):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)
