"""E1 — Dynamic IPC rate measurement (paper Section 5, Fig. 5 usage).

Regenerates the paper's headline example: the TriCore IPC (up to 3
instructions per clock) measured every *x* clock cycles by MCDS counter
pairs, in parallel with the PCP IPC, entirely from trace messages.
Resolution sweep shows the resolution/bandwidth trade.
"""

import numpy as np
import pytest

from repro.core.profiling import ProfilingSession, spec
from repro.soc.config import tc1797_config
from repro.workloads.engine import EngineControlScenario

from _common import emit, once

CYCLES = 200_000


def run_experiment():
    rows = []
    for resolution in (64, 256, 1024):
        device = EngineControlScenario().build(tc1797_config(), {}, seed=1)
        session = ProfilingSession(device, [
            spec.ipc(resolution=resolution),
            spec.ipc(resolution=resolution, core="pcp"),
        ])
        result = session.run(CYCLES)
        tc = result["tc.ipc"]
        pcp = result["pcp.ipc"]
        oracle_ipc = device.soc.ipc()
        rows.append({
            "resolution": resolution,
            "samples": len(tc),
            "tc_mean": tc.mean_rate(),
            "tc_min": float(tc.rates.min()),
            "tc_max": float(tc.rates.max()),
            "pcp_mean": pcp.mean_rate(),
            "oracle": oracle_ipc,
            "mbps": result.bandwidth_mbps(),
        })
    return rows


def render(rows):
    lines = [f"{'res':>6}{'samples':>9}{'TC IPC':>9}{'min':>7}{'max':>7}"
             f"{'PCP IPC':>9}{'oracle':>8}{'Mbit/s':>8}"]
    for r in rows:
        lines.append(f"{r['resolution']:>6}{r['samples']:>9}"
                     f"{r['tc_mean']:>9.3f}{r['tc_min']:>7.2f}"
                     f"{r['tc_max']:>7.2f}{r['pcp_mean']:>9.4f}"
                     f"{r['oracle']:>8.3f}{r['mbps']:>8.3f}")
    lines.append("IPC measured per x clock cycles; finer resolution = more "
                 "dynamics visible and more trace bandwidth.")
    return lines


@pytest.mark.benchmark(group="e1")
def test_e1_dynamic_ipc_rate(benchmark):
    rows = once(benchmark, run_experiment)
    emit("E1", "dynamic IPC rate over the time axis", render(rows))
    for r in rows:
        # measured mean must track the oracle at every resolution
        assert r["tc_mean"] == pytest.approx(r["oracle"], rel=0.03)
        assert 0 < r["tc_mean"] < 3.0
    # the finest windows expose the multi-scalar bursts (>1 instr/cycle)
    # that coarser windows average away — the reason resolution matters
    assert rows[0]["tc_max"] > 1.0
    assert rows[0]["tc_max"] > rows[-1]["tc_max"]
    assert rows[0]["tc_min"] < rows[-1]["tc_min"] + 1e-9
    # finer resolution costs strictly more tool bandwidth
    mbps = [r["mbps"] for r in rows]
    assert mbps[0] > mbps[1] > mbps[2]
