"""E3 — Threshold-coupled multi-resolution measurement (paper Section 5).

"The IPC rate measurement with the high resolution, but also high trace
bandwidth is only activated when the IPC rate with the low resolution is
below a configurable threshold."

Compares an always-on high-resolution IPC measurement against the coupled
configuration on a workload with sporadic flash-hostile anomaly bursts:
same anomalies detected, a fraction of the trace bandwidth.
"""

import numpy as np
import pytest

from repro.core.profiling import MultiResolutionRate, ProfilingSession, spec
from repro.mcds.counters import CYCLES as CYCLE_BASIS
from repro.soc.config import tc1797_config
from repro.workloads.engine import EngineControlScenario

from _common import emit, once

CYCLES = 300_000
PARAMS = {"anomaly": True, "anomaly_period": 50_000}
LOW_RES, HIGH_RES = 1024, 64
THRESHOLD = 0.55


def dip_windows(samples, resolution, threshold):
    return sum(1 for _, v in samples if v / resolution < threshold)


def run_experiment():
    # configuration A: always-on high resolution
    dev_a = EngineControlScenario().build(tc1797_config(), PARAMS, seed=3)
    always = dev_a.mcds.add_rate_counter(
        "ipc.high", ["tc.instr_executed"], HIGH_RES, basis=CYCLE_BASIS)
    dev_a.run(CYCLES)
    a_bits = dev_a.mcds.total_bits
    a_samples = always.samples_emitted

    # configuration B: coupled low/high structures
    dev_b = EngineControlScenario().build(tc1797_config(), PARAMS, seed=3)
    coupled = MultiResolutionRate(dev_b, "ipc", ["tc.instr_executed"],
                                  LOW_RES, HIGH_RES, THRESHOLD,
                                  basis=CYCLE_BASIS)
    dev_b.run(CYCLES)
    b_bits = dev_b.mcds.total_bits
    low, high = coupled.decode()

    anomalies = dev_b.soc.icu.srns
    anomaly_count = next(s.taken_count for s in anomalies.values()
                         if s.name == "anomaly")
    return {
        "always_bits": a_bits,
        "always_samples": a_samples,
        "coupled_bits": b_bits,
        "low_samples": len(low),
        "high_samples": len(high),
        "activations": coupled.activations,
        "anomalies": anomaly_count,
        "high_dips": dip_windows(high, HIGH_RES, THRESHOLD),
    }


def render(r):
    ratio = r["always_bits"] / max(1, r["coupled_bits"])
    return [
        f"{'configuration':<26}{'samples':>9}{'trace bits':>12}",
        f"{'always-on high-res':<26}{r['always_samples']:>9}"
        f"{r['always_bits']:>12}",
        f"{'coupled low+high':<26}{r['low_samples'] + r['high_samples']:>9}"
        f"{r['coupled_bits']:>12}",
        f"bandwidth saving: {ratio:.1f}x",
        f"anomaly bursts injected: {r['anomalies']}, "
        f"high-res activations: {r['activations']}, "
        f"high-res dip samples captured: {r['high_dips']}",
    ]


@pytest.mark.benchmark(group="e3")
def test_e3_multiresolution_coupling(benchmark):
    r = once(benchmark, run_experiment)
    emit("E3", "threshold-coupled counter structures", render(r))
    # the coupled configuration costs a fraction of the bandwidth...
    assert r["coupled_bits"] < r["always_bits"] / 3
    # ...while still arming on (nearly) every anomaly burst
    assert r["activations"] >= r["anomalies"] - 1 >= 1
    # and the high-resolution structure saw the dips in detail
    assert r["high_dips"] > 0
    assert r["high_samples"] < r["always_samples"] / 2
