"""E14 — Chaos campaign: fleet convergence under fault injection (ROADMAP).

The robustness claim of ``repro.faults``: a profiling campaign running
under an adversarial fault plan — transient worker crashes, short hangs,
one permanently poisoned job — still converges, quarantines exactly the
poisoned job, and produces byte-identical payloads for every surviving
job.  The retry/backoff machinery absorbs the injected chaos; determinism
absorbs nothing less than everything else.
"""

import json
import os
import tempfile
import time

import pytest

from repro.faults import load_fault_plan
from repro.fleet import CampaignJob, build_matrix, run_campaign
from repro.fleet.spec import canonical_json
from repro.workloads import CustomerGenerator

from _common import emit, once

CYCLES = 60_000
N_CUSTOMERS = 6
WORKERS = 4
SEED = 9
PLAN_PATH = os.path.join(os.path.dirname(__file__), "fault_plan.json")


def build_jobs():
    customers = CustomerGenerator(seed=42).generate(N_CUSTOMERS)
    jobs = build_matrix(customers, cycle_budgets=(CYCLES,), seed=SEED)
    jobs.append(CampaignJob(name="poison-drill", domain="engine",
                            device="tc1797", cycles=CYCLES, seed=SEED))
    return jobs


def checkpoint_chaos_plan(base):
    """The base chaos plan plus checkpoint-era failure modes: mid-run
    crashes at checkpoint boundaries and damaged checkpoint files, so
    recovery must survive resuming from a *rejected* checkpoint too."""
    rules = [rule.to_dict() for rule in base.rules] + [
        {"site": "worker.crash", "probability": 0.5, "max_faults": 1,
         "match": {"phase": "checkpoint", "attempt": 0}},
        {"site": "checkpoint.corrupt", "probability": 0.3},
        {"site": "checkpoint.truncated", "probability": 0.2},
    ]
    return {"seed": base.seed, "rules": rules, "watchdog": base.watchdog}


def run_experiment():
    jobs = build_jobs()
    plan = load_fault_plan(PLAN_PATH)
    with tempfile.TemporaryDirectory() as root:
        t0 = time.perf_counter()
        clean = run_campaign(jobs, workers=WORKERS,
                             campaign_dir=f"{root}/clean")
        clean_wall = time.perf_counter() - t0

        t0 = time.perf_counter()
        chaos = run_campaign(jobs, workers=WORKERS, backoff_s=0.05,
                             campaign_dir=f"{root}/chaos",
                             fault_plan=plan.to_dict())
        chaos_wall = time.perf_counter() - t0

        # third lane: the same chaos plus checkpoint-targeted faults,
        # with periodic checkpoints absorbing the mid-run crashes
        t0 = time.perf_counter()
        ckpt = run_campaign(jobs, workers=WORKERS, backoff_s=0.05,
                            campaign_dir=f"{root}/ckpt",
                            checkpoint_every=CYCLES // 4,
                            fault_plan=checkpoint_chaos_plan(plan))
        ckpt_wall = time.perf_counter() - t0

    clean_payloads = {r["job_id"]: r["payload"] for r in clean.ok_records}
    chaos_payloads = {r["job_id"]: r["payload"] for r in chaos.ok_records}
    ckpt_payloads = {r["job_id"]: r["payload"] for r in ckpt.ok_records}
    survivors_identical = all(
        canonical_json(chaos_payloads[job_id])
        == canonical_json(clean_payloads[job_id])
        for job_id in chaos_payloads)
    ckpt_identical = all(
        canonical_json(ckpt_payloads[job_id])
        == canonical_json(clean_payloads[job_id])
        for job_id in ckpt_payloads)
    return {
        "clean_wall": clean_wall, "chaos_wall": chaos_wall,
        "ckpt_wall": ckpt_wall,
        "clean": clean.metrics, "chaos": chaos.metrics,
        "ckpt": ckpt.metrics,
        "chaos_quarantined": chaos.quarantined,
        "clean_quarantined": clean.quarantined,
        "ckpt_quarantined": ckpt.quarantined,
        "survivors": len(chaos_payloads),
        "ckpt_survivors": len(ckpt_payloads),
        "survivors_identical": survivors_identical,
        "ckpt_identical": ckpt_identical,
        "plan_rules": len(plan.rules),
    }


@pytest.mark.benchmark(group="e14")
def test_e14_chaos_campaign(benchmark):
    data = once(benchmark, run_experiment)
    overhead = data["chaos_wall"] / data["clean_wall"]
    lines = [
        f"{'campaign':<22}{'wall s':>9}{'executed':>10}{'retries':>9}"
        f"{'quarantined':>13}",
        f"{'clean':<22}{data['clean_wall']:>9.2f}"
        f"{data['clean'].executed:>10}{data['clean'].retries:>9}"
        f"{data['clean'].quarantined:>13}",
        f"{'chaos (fault plan)':<22}{data['chaos_wall']:>9.2f}"
        f"{data['chaos'].executed:>10}{data['chaos'].retries:>9}"
        f"{data['chaos'].quarantined:>13}",
        f"{'chaos + checkpoints':<22}{data['ckpt_wall']:>9.2f}"
        f"{data['ckpt'].executed:>10}{data['ckpt'].retries:>9}"
        f"{data['ckpt'].quarantined:>13}",
        "",
        f"fault plan: {data['plan_rules']} rules "
        f"(transient crashes, hangs, 1 poisoned job)",
        f"chaos wall overhead vs clean: {overhead:.2f}x",
        f"surviving jobs: {data['survivors']}/{N_CUSTOMERS + 1}, payloads "
        f"byte-identical to clean run: {data['survivors_identical']}",
        f"checkpoint lane: {data['ckpt'].checkpoint_saves} saves, "
        f"{data['ckpt'].checkpoint_resumes} mid-run resumes, "
        f"{data['ckpt'].cycles_recovered:,} cycles recovered; payloads "
        f"byte-identical: {data['ckpt_identical']}",
    ]
    emit("E14", "chaos campaign under fault injection", lines)

    # the clean campaign is the control: everything passes, nothing retried
    assert data["clean"].quarantined == 0
    assert data["clean"].executed == N_CUSTOMERS + 1
    # chaos converges: only the permanently poisoned job is quarantined...
    assert [r["job"]["name"] for r in data["chaos_quarantined"]] == \
        ["poison-drill"]
    assert data["survivors"] == N_CUSTOMERS
    # ...the transient faults were actually injected and absorbed...
    assert data["chaos"].retries > 0
    # ...and retries reproduced the clean payloads bit-for-bit
    assert data["survivors_identical"]
    # the checkpointed chaos lane converges the same way, writing real
    # checkpoints along the way, with damaged ones rejected cleanly
    assert [r["job"]["name"] for r in data["ckpt_quarantined"]] == \
        ["poison-drill"]
    assert data["ckpt_survivors"] == N_CUSTOMERS
    assert data["ckpt"].checkpoint_saves > 0
    assert data["ckpt_identical"]
