"""Fleet campaign end-to-end: determinism, caching, resume, quarantine.

The acceptance properties of the subsystem:

* a campaign run with N workers produces a byte-identical aggregate to a
  1-worker run (parallelism never changes the science);
* a warm-cache re-run executes zero jobs;
* a killed campaign resumes from its JSONL store prefix;
* a poison job is quarantined after its retry budget without taking any
  healthy job with it — even when it kills the worker process outright.
"""

import json
import os

import pytest

from repro.fleet import (CampaignJob, CampaignRunner, build_matrix,
                         campaign_matrix, matrix_table, rank_portfolio,
                         run_campaign, volume_weights)
from repro.core.optimization import hardware_options
from repro.soc.config import tc1797_config
from repro.workloads import CustomerGenerator

CYCLES = 12_000
SEED = 9


def population(count=3):
    return CustomerGenerator(seed=42).generate(count)


def make_jobs(count=3):
    return build_matrix(population(count), cycle_budgets=(CYCLES,),
                        seed=SEED)


def poison_job(fault, name="poison"):
    return CampaignJob(name=name, domain="engine", device="tc1797",
                       params={}, cycles=4_000, seed=SEED, fault=fault)


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    """One sequential (1-worker) campaign with cache + store."""
    root = tmp_path_factory.mktemp("fleet-baseline")
    report = run_campaign(make_jobs(), workers=1,
                          cache_dir=str(root / "cache"),
                          campaign_dir=str(root / "run"))
    return root, report


def test_campaign_completes_population(baseline):
    _, report = baseline
    assert report.metrics.total_jobs == 3
    assert report.metrics.executed == 3
    assert not report.quarantined
    names = {r["payload"]["name"] for r in report.ok_records}
    assert names == {c.name for c in population()}
    # records are sorted by content-derived job id
    assert [r["job_id"] for r in report.records] == \
        sorted(r["job_id"] for r in report.records)


def test_parallel_equals_sequential_byte_identical(baseline, tmp_path):
    root, report1 = baseline
    report4 = run_campaign(make_jobs(), workers=4,
                           cache_dir=str(tmp_path / "cache"),
                           campaign_dir=str(tmp_path / "run"))
    with open(report1.aggregate_path, "rb") as a, \
            open(report4.aggregate_path, "rb") as b:
        assert a.read() == b.read()
    # the in-process path is bit-identical too
    report0 = run_campaign(make_jobs(), workers=0,
                           campaign_dir=str(tmp_path / "run0"))
    with open(report1.aggregate_path, "rb") as a, \
            open(report0.aggregate_path, "rb") as b:
        assert a.read() == b.read()


def test_warm_cache_rerun_executes_nothing(baseline):
    root, _ = baseline
    report = run_campaign(make_jobs(), workers=4,
                          cache_dir=str(root / "cache"),
                          campaign_dir=str(root / "rerun"))
    assert report.metrics.executed == 0
    assert report.metrics.cache_hits == 3
    assert report.metrics.cache_hit_rate == 1.0
    assert len(report.ok_records) == 3


def test_cache_misses_only_changed_jobs(baseline, tmp_path):
    root, _ = baseline
    jobs = make_jobs()
    changed = jobs[0]
    changed = CampaignJob(**{**changed.to_dict(), "cycles": CYCLES + 1000})
    report = run_campaign([changed] + jobs[1:], workers=0,
                          cache_dir=str(root / "cache"),
                          campaign_dir=str(tmp_path / "run"))
    assert report.metrics.cache_hits == 2
    assert report.metrics.executed == 1


def test_resume_after_kill(baseline, tmp_path):
    """A killed campaign's JSONL prefix is replayed, not re-executed."""
    root, report = baseline
    campaign_dir = tmp_path / "killed"
    campaign_dir.mkdir()
    store_path = campaign_dir / "campaign.jsonl"
    with open(report.store_path) as handle:
        lines = handle.readlines()
    # simulate a kill: only the first record made it to disk, the second
    # is a torn partial line
    store_path.write_text(lines[0] + lines[1][:40])
    resumed = run_campaign(make_jobs(), workers=0,
                           campaign_dir=str(campaign_dir), resume=True)
    assert resumed.metrics.resumed == 1
    assert resumed.metrics.executed == 2
    assert len(resumed.ok_records) == 3
    # and the final aggregate is still byte-identical to the clean run
    with open(report.aggregate_path, "rb") as a, \
            open(resumed.aggregate_path, "rb") as b:
        assert a.read() == b.read()


def test_without_resume_everything_reruns(baseline, tmp_path):
    _, report = baseline
    campaign_dir = tmp_path / "cold"
    campaign_dir.mkdir()
    with open(report.store_path) as handle:
        (campaign_dir / "campaign.jsonl").write_text(handle.read())
    cold = run_campaign(make_jobs(), workers=0,
                        campaign_dir=str(campaign_dir), resume=False)
    assert cold.metrics.resumed == 0
    assert cold.metrics.executed == 3


def test_poison_job_quarantined_not_fatal(tmp_path):
    jobs = make_jobs(2) + [poison_job("crash")]
    report = run_campaign(jobs, workers=2, max_retries=1, backoff_s=0.01,
                          campaign_dir=str(tmp_path))
    assert [q["job_id"] for q in report.quarantined] == \
        [j.job_id for j in jobs if j.fault]
    quarantined = report.quarantined[0]
    assert quarantined["attempts"] == 2            # initial + 1 retry
    assert "fault drill" in quarantined["error"]
    assert len(report.ok_records) == 2             # healthy jobs unharmed
    # the aggregate names the quarantined job but carries no payload for it
    aggregate = json.load(open(report.aggregate_path))
    assert aggregate["quarantined"] == [quarantined["job_id"]]
    assert len(aggregate["jobs"]) == 2


def test_flaky_job_recovers_via_retry(tmp_path):
    """A worker raising mid-campaign succeeds on a later attempt."""
    jobs = make_jobs(2) + [CampaignJob(
        name="flaky", domain="engine", device="tc1797", params={},
        cycles=4_000, seed=SEED, fault="flaky:1")]
    report = run_campaign(jobs, workers=2, max_retries=2, backoff_s=0.01,
                          campaign_dir=str(tmp_path))
    assert not report.quarantined
    assert report.metrics.retries >= 1
    flaky = [r for r in report.records if r["job"]["name"] == "flaky"][0]
    assert flaky["status"] == "ok" and flaky["attempts"] == 2


def test_worker_process_death_survived(tmp_path):
    """os._exit in a worker breaks the pool; the campaign carries on."""
    jobs = make_jobs(2) + [poison_job("exit", name="killer")]
    report = run_campaign(jobs, workers=2, max_retries=1, backoff_s=0.01,
                          campaign_dir=str(tmp_path))
    assert [q["job"]["name"] for q in report.quarantined] == ["killer"]
    assert "worker process died" in report.quarantined[0]["error"]
    assert len(report.ok_records) == 2


def test_exit_drill_rejected_in_process():
    with pytest.raises(ValueError, match="workers >= 1"):
        CampaignRunner([poison_job("exit")], workers=0)


def test_metrics_and_matrix_render(baseline):
    _, report = baseline
    table = report.metrics.summary_table()
    assert "cache hits" in table and "worker utilization" in table
    rows = campaign_matrix(report.records)
    assert len(rows) == 3
    rendered = matrix_table(rows)
    for row in rows:
        assert row["name"] in rendered
        assert row["ipc"] > 0


def test_volume_weights_trace_derived(baseline):
    _, report = baseline
    weights = volume_weights(report.records)
    assert set(weights) == {c.name for c in population()}
    for record in report.ok_records:
        ipc = record["payload"]["profile"]["parameters"]["tc.ipc"]
        expected = max(1.0, ipc["mean_rate"] * CYCLES)
        assert weights[record["payload"]["name"]] == pytest.approx(expected)


def test_rank_portfolio_consumes_campaign(baseline):
    _, report = baseline
    customers = population()
    entries = rank_portfolio(customers, report.records, tc1797_config(),
                             hardware_options()[:2],
                             work_instructions=20_000, seed=SEED)
    assert len(entries) == 2
    for entry in entries:
        assert set(entry.per_customer_gain) == {c.name for c in customers}


def test_store_append_and_rewrite_roundtrip(tmp_path):
    from repro.fleet import ResultStore
    store = ResultStore(str(tmp_path))
    store.append({"job_id": "b", "x": 1})
    store.append({"job_id": "a", "x": 2})
    assert [r["job_id"] for r in store.load()] == ["b", "a"]
    store.rewrite(sorted(store.load(), key=lambda r: r["job_id"]))
    assert [r["job_id"] for r in store.load()] == ["a", "b"]
    store.clear()
    assert store.load() == []


# -- concurrent tailing (the serve-layer streaming contract) -----------------
def test_store_tail_incremental(tmp_path):
    from repro.fleet import ResultStore
    store = ResultStore(str(tmp_path))
    store.append({"job_id": "a"})
    records, offset = store.tail(0)
    assert [r["job_id"] for r in records] == ["a"]
    records2, offset2 = store.tail(offset)
    assert records2 == [] and offset2 == offset
    store.append({"job_id": "b"})
    records3, offset3 = store.tail(offset)
    assert [r["job_id"] for r in records3] == ["b"]
    assert offset3 > offset


def test_store_tail_ignores_partial_last_line(tmp_path):
    """A half-written record is invisible until its newline lands."""
    from repro.fleet import ResultStore
    store = ResultStore(str(tmp_path))
    store.append({"job_id": "a"})
    with open(store.path, "a") as handle:
        handle.write('{"job_id": "b", "_crc32"')    # writer mid-append
    records, offset = store.tail(0)
    assert [r["job_id"] for r in records] == ["a"]
    with open(store.path, "a") as handle:       # writer finishes the line
        handle.write(": 1}\n")
    # the completed line fails its CRC check — the read-only tailer
    # skips it with a warning but must NOT quarantine
    with pytest.warns(RuntimeWarning, match="tail skipped"):
        records2, offset2 = store.tail(offset)
    assert records2 == []
    assert offset2 > offset
    assert not os.path.exists(store.quarantine_path)


def test_store_tail_races_live_writer_across_flush_boundary(tmp_path):
    """A *valid* record flushed in two halves is delivered exactly once.

    The orchestrator's append is write+flush+fsync, but the OS may make
    the bytes visible to a concurrent reader between the writer's two
    ``write`` syscalls — the tailer can observe the first half of a
    perfectly good line with no newline yet.  The contract: the record
    is invisible while partial, delivered exactly once when its newline
    lands, and the read-only tailer never quarantines anything.
    """
    from repro.fleet import ResultStore
    from repro.fleet.store import seal_record
    store = ResultStore(str(tmp_path))
    store.append({"job_id": "a"})
    line = seal_record({"job_id": "b", "payload": {"ipc": 0.75}}) + "\n"
    split = len(line) // 2                      # mid-record, mid-field
    with open(store.path, "a") as handle:
        handle.write(line[:split])
        handle.flush()                          # first half hits the file
        records, offset = store.tail(0)
        assert [r["job_id"] for r in records] == ["a"]
        seen_partial = store.tail(offset)
        assert seen_partial == ([], offset)     # half a line is nothing
        handle.write(line[split:])
        handle.flush()                          # newline lands
    records2, offset2 = store.tail(offset)
    assert [r["job_id"] for r in records2] == ["b"]
    assert records2[0]["payload"] == {"ipc": 0.75}
    # delivered once: the cursor moved past it, a re-poll yields nothing
    assert store.tail(offset2) == ([], offset2)
    assert not os.path.exists(store.quarantine_path)


def test_store_tail_holds_position_on_shrink(tmp_path):
    from repro.fleet import ResultStore
    store = ResultStore(str(tmp_path))
    for job_id in ("a", "b", "c"):
        store.append({"job_id": job_id})
    records, offset = store.tail(0)
    assert len(records) == 3
    store.rewrite([{"job_id": "a"}])            # file shrank underneath
    records2, offset2 = store.tail(offset)
    assert records2 == [] and offset2 == offset


def test_store_tail_holds_position_on_same_size_rewrite(tmp_path):
    """A rewrite that does NOT shrink the file must not desync the tailer.

    Cluster finalization rewrites the store with the same records sorted
    by job id — roughly the same byte count — so a tailer's offset can
    land mid-line in the new content.  The tailer must detect the lost
    record boundary (the byte before its offset is no longer a newline)
    and hold position silently instead of warning about "damage" it
    manufactured itself.
    """
    import warnings as _warnings
    from repro.fleet import ResultStore
    store = ResultStore(str(tmp_path))
    for job_id in ("b", "c", "a"):              # commit order != sorted
        store.append({"job_id": job_id, "payload": {"ipc": 0.5}})
    records, _ = store.tail(0)
    assert len(records) == 3
    # a finalize-style rewrite happens under the tailer: same records,
    # sorted — the byte count barely moves but every boundary shifts
    store.rewrite(sorted((r for r in store.load()),
                         key=lambda r: r["job_id"]))
    content = open(store.path, "rb").read()
    first_line_end = content.index(b"\n") + 1
    mid_offset = first_line_end + 7             # provably mid-record now
    assert content[mid_offset - 1:mid_offset] != b"\n"
    with _warnings.catch_warnings():
        _warnings.simplefilter("error")         # any warning fails the test
        held = store.tail(mid_offset)
    assert held == ([], mid_offset)
    # an aligned offset on the rewritten file still works normally
    records2, _ = store.tail(first_line_end)
    assert [r["job_id"] for r in records2] == ["b", "c"]


def test_store_tail_missing_file(tmp_path):
    from repro.fleet import ResultStore
    store = ResultStore(str(tmp_path))
    assert store.tail(0) == ([], 0)


def test_store_load_skips_unterminated_tail(tmp_path):
    """load() must tolerate a concurrent writer's partial last line."""
    from repro.fleet import ResultStore
    store = ResultStore(str(tmp_path))
    store.append({"job_id": "a"})
    with open(store.path, "a") as handle:
        handle.write('{"job_id": "b"')
    with pytest.warns(RuntimeWarning, match="unterminated partial tail"):
        records = store.load()
    assert [r["job_id"] for r in records] == ["a"]
    assert not os.path.exists(store.quarantine_path)


# -- cooperative preemption (the serve-layer eviction contract) --------------
def test_preempted_campaign_resumes_byte_identical(tmp_path):
    """Yield at a checkpoint boundary; resume finishes the same bytes."""
    jobs = make_jobs(2)
    reference = run_campaign(jobs, workers=0,
                             campaign_dir=str(tmp_path / "ref"))
    fired = {"n": 0}

    def yield_after_two():
        fired["n"] += 1
        return fired["n"] > 2

    run_dir = str(tmp_path / "run")
    first = run_campaign(jobs, workers=0, campaign_dir=run_dir,
                         checkpoint_every=4_000,
                         should_yield=yield_after_two)
    assert first.preempted
    assert first.aggregate_path is None         # no aggregate mid-flight
    assert len(first.records) < 2
    second = run_campaign(jobs, workers=0, campaign_dir=run_dir,
                          checkpoint_every=4_000, resume=True)
    assert not second.preempted
    assert second.metrics.checkpoint_resumes >= 1
    with open(reference.aggregate_path, "rb") as a, \
            open(second.aggregate_path, "rb") as b:
        assert a.read() == b.read()


def test_yield_before_first_job_completes_nothing(tmp_path):
    report = run_campaign(make_jobs(1), workers=0,
                          campaign_dir=str(tmp_path),
                          should_yield=lambda: True)
    assert report.preempted
    assert report.records == []
    assert not report.quarantined


def test_should_yield_requires_in_process():
    with pytest.raises(ValueError, match="workers=0"):
        CampaignRunner(make_jobs(1), workers=2,
                       should_yield=lambda: False)
