"""CircuitBreaker: trip/cooldown/probe state machine on a fake clock."""

import pytest

from repro.errors import ConfigurationError
from repro.resilience import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now

    def advance(self, s):
        self.now += s


def make(clock, **kwargs):
    defaults = dict(window_s=30.0, min_samples=4, failure_threshold=0.5,
                    cooldown_s=10.0, max_cooldown_s=80.0,
                    half_open_probes=2, clock=clock)
    defaults.update(kwargs)
    return CircuitBreaker(**defaults)


def trip(breaker, clock, failures=4):
    for _ in range(failures):
        breaker.record_failure()
        clock.advance(0.1)
    assert breaker.state == OPEN


def test_stays_closed_below_min_samples():
    clock = FakeClock()
    breaker = make(clock)
    for _ in range(3):
        breaker.record_failure()
    assert breaker.state == CLOSED and breaker.allow()


def test_trips_at_threshold_and_sheds():
    clock = FakeClock()
    breaker = make(clock)
    breaker.record_success()
    breaker.record_success()
    breaker.record_failure()
    assert breaker.state == CLOSED
    breaker.record_failure()          # 2/4 = threshold
    assert breaker.state == OPEN
    assert not breaker.allow()
    assert breaker.shed_total == 1
    assert breaker.retry_after_s() == pytest.approx(10.0)


def test_old_outcomes_age_out_of_the_window():
    clock = FakeClock()
    breaker = make(clock)
    breaker.record_failure()
    breaker.record_failure()
    clock.advance(31.0)               # both fall off the window
    breaker.record_success()
    breaker.record_failure()
    breaker.record_failure()
    breaker.record_failure()          # 3/4 >= 0.5 but window only has 4
    assert breaker.failure_rate() == pytest.approx(0.75)
    assert breaker.state == OPEN      # still trips — on *recent* truth


def test_half_open_probes_then_close_on_success():
    clock = FakeClock()
    breaker = make(clock)
    trip(breaker, clock)
    clock.advance(10.1)
    assert breaker.state == HALF_OPEN
    assert breaker.allow() and breaker.allow()      # the probe budget
    assert not breaker.allow()                      # budget exhausted
    breaker.record_success()
    assert breaker.state == HALF_OPEN               # one probe is not proof
    breaker.record_success()
    assert breaker.state == CLOSED
    # full recovery clears the window and the adaptive cooldown
    assert breaker.failure_rate() == 0.0
    assert breaker.snapshot()["consecutive_trips"] == 0


def test_probe_failure_retrips_with_doubled_cooldown():
    clock = FakeClock()
    breaker = make(clock)
    trip(breaker, clock)                            # cooldown 10
    clock.advance(10.1)
    assert breaker.allow()                          # half-open probe
    breaker.record_failure()                        # probe failed
    assert breaker.state == OPEN
    assert breaker.retry_after_s() == pytest.approx(20.0)   # doubled
    clock.advance(20.1)
    assert breaker.allow()
    breaker.record_failure()
    assert breaker.retry_after_s() == pytest.approx(40.0)   # doubled again
    clock.advance(40.1)
    assert breaker.allow()
    breaker.record_failure()
    assert breaker.retry_after_s() == pytest.approx(80.0)   # capped
    clock.advance(80.1)
    assert breaker.allow()
    breaker.record_failure()
    assert breaker.retry_after_s() == pytest.approx(80.0)   # stays capped


def test_retry_after_shrinks_as_cooldown_elapses():
    clock = FakeClock()
    breaker = make(clock)
    trip(breaker, clock)                # trips at now=1000.3, ends +10s
    clock.advance(6.9)
    assert breaker.retry_after_s() == pytest.approx(3.0)
    clock.advance(2.9)
    assert breaker.retry_after_s() >= 1.0           # floor of one second


def test_transition_callback_fires_once_per_change():
    clock = FakeClock()
    seen = []
    breaker = make(clock)
    breaker._on_transition = lambda old, new: seen.append((old, new))
    trip(breaker, clock)
    clock.advance(10.1)
    breaker.allow()                                 # forces half-open check
    breaker.record_success()
    breaker.record_success()
    assert seen == [(CLOSED, OPEN), (OPEN, HALF_OPEN),
                    (HALF_OPEN, CLOSED)]
    assert breaker.transitions == 3


def test_snapshot_shape():
    clock = FakeClock()
    breaker = make(clock)
    snap = breaker.snapshot()
    assert snap["state"] == CLOSED
    assert set(snap) == {"state", "failure_rate", "window_samples",
                         "consecutive_trips", "cooldown_s", "shed_total",
                         "transitions"}


@pytest.mark.parametrize("kwargs", [
    {"window_s": 0}, {"min_samples": 0}, {"failure_threshold": 0.0},
    {"failure_threshold": 1.5}, {"cooldown_s": 0},
    {"cooldown_s": 10, "max_cooldown_s": 5}, {"half_open_probes": 0},
])
def test_config_validation(kwargs):
    with pytest.raises(ConfigurationError):
        make(FakeClock(), **kwargs)
