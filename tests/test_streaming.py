"""Streaming profiling sessions and adaptive resolution calibration."""

import pytest

from repro.core.profiling import (AdaptiveResolutionController,
                                  StreamingSession, spec)
from repro.ed.device import EdConfig, EmulationDevice
from repro.soc.config import tc1797_config
from repro.soc.cpu import isa
from repro.soc.memory import map as amap

from tests.helpers import make_loop_program


def make_streaming_device(emem_kb=32, dap_mbps=16.0, seed=14):
    device = EmulationDevice(EdConfig(
        soc=tc1797_config(), emem_kb=emem_kb,
        dap_bandwidth_mbps=dap_mbps, dap_streaming=True), seed=seed)
    device.load_program(make_loop_program(
        alu_per_iter=3,
        load_gen=isa.TableAddr(amap.PFLASH_BASE + 0x10_0000, 4, 2048,
                               locality=0.6)))
    return device


def test_requires_streaming_dap():
    device = EmulationDevice(EdConfig(soc=tc1797_config()), seed=14)
    device.load_program(make_loop_program())
    with pytest.raises(ValueError, match="post-mortem"):
        StreamingSession(device, [spec.ipc()])


def test_sustainable_config_loses_nothing():
    device = make_streaming_device()
    session = StreamingSession(device, [spec.ipc(resolution=4096)])
    stats = session.run(100_000)
    assert stats.healthy
    assert stats.messages_received > 10
    assert stats.emem_peak_fill < 0.05
    result = session.result()
    assert result.mean_rate("tc.ipc") == pytest.approx(
        device.soc.ipc(), rel=0.05)


def test_oversubscribed_config_overflows():
    # tiny EMEM + starved DAP + fine windows -> messages must be lost
    device = make_streaming_device(emem_kb=1, dap_mbps=0.5)
    session = StreamingSession(device, [
        spec.ipc(resolution=32),
        spec.rate("stall", "tc.stall.load", per=20),
    ])
    stats = session.run(150_000)
    assert not stats.healthy
    assert stats.messages_lost > 0
    assert stats.emem_peak_fill > 0.9
    assert session.result().lost_messages == stats.messages_lost


def test_overflow_marks_windows_degraded():
    # every lost span must be a recorded gap, and every sample whose
    # window overlaps one must come back flagged — never silently wrong
    device = make_streaming_device(emem_kb=1, dap_mbps=0.5)
    session = StreamingSession(device, [spec.ipc(resolution=32)])
    stats = session.run(150_000)
    assert stats.gaps > 0
    result = session.result()
    assert result.gaps
    assert result.degraded_samples > 0
    assert result["tc.ipc"].degraded.any()
    assert not result.healthy
    assert "DEGRADED" in result.summary_table()


def test_healthy_run_has_no_gaps_or_degradation():
    device = make_streaming_device()
    session = StreamingSession(device, [spec.ipc(resolution=4096)])
    stats = session.run(100_000)
    assert stats.gaps == 0
    result = session.result()
    assert result.gaps == []
    assert result.degraded_samples == 0
    assert not result["tc.ipc"].degraded.any()
    assert "DEGRADED" not in result.summary_table()


def test_strict_session_raises_on_loss():
    from repro.errors import TraceOverrunError

    device = make_streaming_device(emem_kb=1, dap_mbps=0.5)
    session = StreamingSession(device, [spec.ipc(resolution=32)],
                               strict=True)
    with pytest.raises(TraceOverrunError, match="lost"):
        session.run(150_000)


def test_received_plus_buffered_consistent():
    device = make_streaming_device()
    session = StreamingSession(device, [spec.ipc(resolution=1024)])
    session.run(50_000)
    result = session.result()
    total = len(device.dap.received) + device.emem.message_count
    assert len(result["tc.ipc"]) == total


def test_adaptive_controller_finds_sustainable_scale():
    def build():
        return make_streaming_device(emem_kb=2, dap_mbps=2.0)

    base = [spec.ipc(resolution=128),
            spec.rate("stall", "tc.stall.load", per=100)]
    controller = AdaptiveResolutionController(build, base,
                                              trial_cycles=40_000,
                                              fill_limit=0.5)
    scale = controller.calibrate()
    assert scale > 1                       # base config overflows
    assert controller.trials[-1]["sustainable"]
    assert all(not t["sustainable"] for t in controller.trials[:-1])
    scaled = controller.specs_for(scale)
    assert scaled[0].resolution == 128 * scale


def test_adaptive_controller_accepts_base_when_fine():
    def build():
        return make_streaming_device(emem_kb=512, dap_mbps=50.0)

    controller = AdaptiveResolutionController(
        build, [spec.ipc(resolution=8192)], trial_cycles=30_000)
    assert controller.calibrate() == 1


def test_adaptive_controller_gives_up():
    def build():
        return make_streaming_device(emem_kb=1, dap_mbps=0.01)

    controller = AdaptiveResolutionController(
        build, [spec.ipc(resolution=16)], trial_cycles=30_000,
        max_doublings=2)
    with pytest.raises(RuntimeError, match="sustainable"):
        controller.calibrate()
