"""Emulation memory: ring/fill capture, trigger-stop, tool access."""

import pytest

from repro.ed.emem import FILL, RING, EmulationMemory
from repro.mcds.messages import TraceMessage


def msg(cycle, bits=80):
    return TraceMessage("rate_sample", cycle, bits, "s", 1)


def test_capacity_accounting():
    emem = EmulationMemory(total_kb=1)          # 8192 bits of trace
    emem.store(msg(0, bits=4000))
    emem.store(msg(1, bits=4000))
    assert emem.message_count == 2
    assert emem.stored_bits == 8000
    assert 0.9 < emem.fill_ratio <= 1.0


def test_ring_mode_drops_oldest():
    emem = EmulationMemory(total_kb=1, mode=RING)
    for i in range(4):
        emem.store(msg(i, bits=3000))
    # 4 x 3000 bits into 8192: messages 0 and 1 wrapped away
    assert emem.lost_oldest == 2
    assert emem.contents()[0].cycle == 2
    assert emem.stored_bits <= emem.capacity_bits


def test_fill_mode_rejects_newest():
    emem = EmulationMemory(total_kb=1, mode=FILL)
    for i in range(4):
        emem.store(msg(i, bits=3000))
    assert emem.lost_new >= 1
    assert emem.contents()[0].cycle == 0


def test_calibration_share_shrinks_trace():
    emem = EmulationMemory(total_kb=512, calibration_kb=256)
    assert emem.capacity_bits == 256 * 1024 * 8
    emem.reserve_calibration(384)
    assert emem.capacity_bits == 128 * 1024 * 8
    with pytest.raises(ValueError):
        emem.reserve_calibration(1024)


def test_trigger_stop_freezes_after_post_share():
    emem = EmulationMemory(total_kb=1)
    for i in range(10):
        emem.store(msg(i, bits=500))
    emem.trigger_stop(cycle=100, post_trigger_fraction=0.25)
    # 25% of 8192 = 2048 bits of post-trigger data
    for i in range(10):
        emem.store(msg(100 + i, bits=500))
    assert emem.frozen
    assert emem.lost_new > 0
    assert emem.trigger_cycle == 100
    post = [m for m in emem.contents() if m.cycle >= 100]
    assert 2048 - 500 <= sum(m.bits for m in post) <= 2048 + 500


def test_trigger_stop_idempotent():
    emem = EmulationMemory(total_kb=1)
    emem.trigger_stop(10)
    emem.trigger_stop(20)
    assert emem.trigger_cycle == 10


def test_pop_front_whole_messages_only():
    emem = EmulationMemory(total_kb=1)
    emem.store(msg(0, bits=100))
    emem.store(msg(1, bits=100))
    popped, bits = emem.pop_front(150)
    assert len(popped) == 1 and bits == 100
    assert emem.message_count == 1


def test_history_cycles_span():
    emem = EmulationMemory(total_kb=1)
    emem.store(msg(100))
    emem.store(msg(450))
    assert emem.history_cycles() == 350


def test_invalid_configs():
    with pytest.raises(ValueError):
        EmulationMemory(total_kb=10, calibration_kb=20)
    with pytest.raises(ValueError):
        EmulationMemory(total_kb=10, mode="spiral")


def test_reset():
    emem = EmulationMemory(total_kb=1)
    emem.store(msg(0))
    emem.trigger_stop(5)
    emem.reset()
    assert emem.message_count == 0
    assert not emem.frozen
    assert emem.trigger_cycle is None
