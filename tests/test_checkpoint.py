"""Checkpoint/restore: determinism, rejection, and crash-safe fleet resume.

The contract under test (docs/checkpoint.md): restoring a checkpoint into
a freshly built same-spec device and running on is *byte-identical* to a
run that was never interrupted; any damaged checkpoint is rejected with a
retryable :class:`~repro.errors.CheckpointError` before a single value
reaches a component; and a fleet campaign with ``checkpoint_every`` set
resumes crashed attempts mid-run yet still produces the exact aggregate
an undisturbed campaign writes.
"""

import json
import os
import warnings

import pytest

from repro.checkpoint import (CheckpointError, PREV_SUFFIX, checkpoint_info,
                              load_checkpoint, load_latest_checkpoint,
                              save_checkpoint)
from repro.core.profiling import ProfilingSession, spec as pspec
from repro.core.profiling.export import result_to_json
from repro.errors import ReproError
from repro.faults import FaultInjector, FaultPlan
from repro.fleet import CampaignJob, run_campaign
from repro.fleet.store import ResultStore
from repro.obs import telemetry
from repro.soc.config import tc1797_config
from repro.workloads import BodyGatewayScenario, EngineControlScenario

CYCLES = 40_000
MID = 15_000


def build_device(scenario_cls=EngineControlScenario, seed=2008):
    """One profiled device; the session must exist on *every* device a
    payload is read from, so it is constructed at build time on all of
    them (it registers MCDS rate counters and records its start cycle)."""
    device = scenario_cls().build(tc1797_config(), {}, seed=seed)
    session = ProfilingSession(
        device, pspec.engine_parameter_set(ipc_resolution=256, rate_per=100))
    return device, session


def payload(device, session):
    return result_to_json(session.result(), compact=True)


# -- tentpole: resume-then-run is byte-identical -----------------------------

def test_resume_is_byte_identical(tmp_path):
    path = str(tmp_path / "mid.ckpt")
    d1, s1 = build_device()          # uninterrupted control
    d1.run(CYCLES)

    d2, _ = build_device()           # interrupted at MID
    d2.run(MID)
    d2.checkpoint(path)

    d3, s3 = build_device()          # fresh device, resumed
    meta = d3.restore(path)
    assert meta["cycle"] == MID
    assert d3.cycle == MID
    d3.run(CYCLES - MID)

    assert d3.cycle == d1.cycle
    assert d3.oracle() == d1.oracle()
    assert payload(d3, s3) == payload(d1, s1)


def test_rotation_keeps_a_prev_fallback(tmp_path):
    path = str(tmp_path / "rot.ckpt")
    device, _ = build_device()
    device.run(10_000)
    device.checkpoint(path)
    device.run(10_000)
    device.checkpoint(path)          # rotates the first to .prev
    assert os.path.exists(path + PREV_SUFFIX)
    _, meta_prev = load_checkpoint(path + PREV_SUFFIX)
    _, meta_main = load_checkpoint(path)
    assert (meta_prev["cycle"], meta_main["cycle"]) == (10_000, 20_000)

    # damage the newest file: the latest-loader falls back to .prev
    with open(path, "r+") as handle:
        text = handle.read()
        handle.seek(0)
        handle.write(text[: len(text) // 2])
        handle.truncate()
    body, meta, used = load_latest_checkpoint(path)
    assert used == path + PREV_SUFFIX
    assert meta["cycle"] == 10_000

    # and restoring the fallback still gives byte-identical resume
    fresh, s_fresh = build_device()
    fresh.soc._ensure_order()
    fresh.soc.sim.restore_state(body)
    fresh.run(CYCLES - 10_000)
    control, s_control = build_device()
    control.run(CYCLES)
    assert payload(fresh, s_fresh) == payload(control, s_control)


# -- rejection: every damage mode is caught before any state moves -----------

def _saved_checkpoint(tmp_path, name="x.ckpt"):
    path = str(tmp_path / name)
    device, _ = build_device()
    device.run(MID)
    device.checkpoint(path)
    return path


def test_corrupt_checkpoint_rejected_retryably(tmp_path):
    path = _saved_checkpoint(tmp_path)
    with open(path, "r+") as handle:
        text = handle.read()
        mid = len(text) // 2
        handle.seek(0)
        handle.write(text[:mid]
                     + ("0" if text[mid] != "0" else "1") + text[mid + 1:])
    with pytest.raises(CheckpointError) as info:
        load_checkpoint(path)
    assert info.value.retryable is True
    assert isinstance(info.value, ReproError)


def test_truncated_checkpoint_rejected(tmp_path):
    path = _saved_checkpoint(tmp_path)
    with open(path, "r+") as handle:
        text = handle.read()
        handle.seek(0)
        handle.write(text[: len(text) // 3])
        handle.truncate()
    with pytest.raises(CheckpointError, match="JSON"):
        load_checkpoint(path)
    assert load_latest_checkpoint(path) is None    # no .prev either


def test_schema_mismatch_rejected(tmp_path):
    path = _saved_checkpoint(tmp_path)
    with open(path) as handle:
        document = json.load(handle)
    document["schema"] = 999
    with open(path, "w") as handle:
        json.dump(document, handle)
    with pytest.raises(CheckpointError, match="schema"):
        load_checkpoint(path)


def test_restore_into_wrong_device_rejected(tmp_path):
    path = _saved_checkpoint(tmp_path)            # engine topology
    other, _ = build_device(BodyGatewayScenario)  # different roster
    other.soc._ensure_order()
    with pytest.raises(CheckpointError):
        other.restore(path)
    # validation happens before mutation: the device is still pristine
    assert other.cycle == 0


def test_missing_file_rejected(tmp_path):
    with pytest.raises(CheckpointError, match="cannot read"):
        load_checkpoint(str(tmp_path / "nope.ckpt"))
    assert load_latest_checkpoint(str(tmp_path / "nope.ckpt")) is None


# -- injected damage: the checkpoint.* fault sites ---------------------------

@pytest.mark.parametrize("site", ["checkpoint.corrupt",
                                  "checkpoint.truncated"])
def test_injected_checkpoint_damage_is_rejected(tmp_path, site):
    path = str(tmp_path / "damaged.ckpt")
    device, _ = build_device()
    device.run(MID)
    plan = FaultPlan(rules=({"site": site, "max_faults": 1},))
    with FaultInjector(plan, scope="t") as injector:
        device.checkpoint(path)
    assert injector.injected == {site: 1}
    with pytest.raises(CheckpointError):
        load_checkpoint(path)
    assert load_latest_checkpoint(path) is None


# -- telemetry: the repro_checkpoint_* metric families -----------------------

def test_checkpoint_metrics_and_events(tmp_path):
    path = str(tmp_path / "tel.ckpt")
    with telemetry(run_id="ckpt") as tel:
        device, _ = build_device()
        device.run(MID)
        device.checkpoint(path)
        fresh, _ = build_device()
        fresh.restore(path)
        # a rejected restore counts separately
        bad = str(tmp_path / "bad.ckpt")
        with open(bad, "w") as handle:
            handle.write("{not a checkpoint")
        assert load_latest_checkpoint(bad) is None
        reg = tel.registry
        assert reg.get("repro_checkpoint_writes_total") \
            .labels("emulation_device").value == 1
        assert reg.get("repro_checkpoint_bytes_total").labels().value \
            == os.path.getsize(path)
        restores = reg.get("repro_checkpoint_restores_total")
        assert restores.labels("success").value == 1
        assert restores.labels("rejected").value == 1
        names = [e["event"] for e in tel.events.records]
        assert "checkpoint.written" in names
        assert "checkpoint.restored" in names


def test_checkpoint_info(tmp_path):
    path = _saved_checkpoint(tmp_path)
    info = checkpoint_info(path)
    assert info["meta"]["cycle"] == MID
    assert "tricore" in info["components"]
    assert info["size_bytes"] == os.path.getsize(path)


# -- fleet: crash-safe campaign persistence ----------------------------------

JOBS = [
    CampaignJob(name="engine-a", domain="engine", device="tc1797",
                cycles=45_000),
    CampaignJob(name="body-b", domain="body", device="tc1797",
                cycles=45_000),
]

CRASH_AT_CHECKPOINT = {
    "seed": 7,
    "rules": [{"site": "worker.crash", "max_faults": 1,
               "match": {"phase": "checkpoint", "attempt": 0}}],
}


def _aggregate_bytes(report):
    with open(report.aggregate_path, "rb") as handle:
        return handle.read()


def test_campaign_chunked_checkpointing_is_identical(tmp_path):
    plain = run_campaign(JOBS, workers=0,
                         campaign_dir=str(tmp_path / "plain"))
    chunked = run_campaign(JOBS, workers=0,
                           campaign_dir=str(tmp_path / "chunked"),
                           checkpoint_every=15_000)
    assert _aggregate_bytes(chunked) == _aggregate_bytes(plain)
    assert chunked.metrics.checkpoint_saves > 0
    assert chunked.metrics.checkpoint_resumes == 0
    # successful jobs clean their checkpoints up
    assert os.listdir(str(tmp_path / "chunked" / "checkpoints")) == []


def test_campaign_crash_resumes_from_checkpoint(tmp_path):
    control = run_campaign(JOBS, workers=0,
                           campaign_dir=str(tmp_path / "control"))
    crashed = run_campaign(JOBS, workers=0, backoff_s=0.0,
                           campaign_dir=str(tmp_path / "crashed"),
                           checkpoint_every=15_000,
                           fault_plan=CRASH_AT_CHECKPOINT)
    # every attempt crashed once mid-run and resumed, not restarted:
    # the retry budget was spent in lost cycles, not lost jobs
    assert crashed.metrics.retries == len(JOBS)
    assert crashed.metrics.checkpoint_resumes == len(JOBS)
    assert crashed.metrics.cycles_recovered == 15_000 * len(JOBS)
    assert crashed.metrics.quarantined == 0
    assert _aggregate_bytes(crashed) == _aggregate_bytes(control)


def test_campaign_corrupt_checkpoint_falls_back_to_cycle_zero(tmp_path):
    control = run_campaign(JOBS, workers=0,
                           campaign_dir=str(tmp_path / "control"))
    plan = {
        "seed": 7,
        "rules": [
            {"site": "worker.crash", "max_faults": 1,
             "match": {"phase": "checkpoint", "attempt": 0}},
            # every checkpoint written is damaged, so the retry must
            # reject them all and restart from cycle 0
            {"site": "checkpoint.corrupt"},
        ],
    }
    mangled = run_campaign(JOBS, workers=0, backoff_s=0.0,
                           campaign_dir=str(tmp_path / "mangled"),
                           checkpoint_every=15_000, fault_plan=plan)
    assert mangled.metrics.retries == len(JOBS)
    assert mangled.metrics.checkpoint_resumes == 0     # fell back to 0
    assert mangled.metrics.quarantined == 0
    assert _aggregate_bytes(mangled) == _aggregate_bytes(control)


def test_campaign_pool_workers_resume_identically(tmp_path):
    control = run_campaign(JOBS, workers=0,
                           campaign_dir=str(tmp_path / "control"))
    pooled = run_campaign(JOBS, workers=2, backoff_s=0.0,
                          campaign_dir=str(tmp_path / "pooled"),
                          checkpoint_every=15_000,
                          fault_plan=CRASH_AT_CHECKPOINT)
    assert pooled.metrics.checkpoint_resumes == len(JOBS)
    assert _aggregate_bytes(pooled) == _aggregate_bytes(control)


def test_checkpoint_every_requires_campaign_dir():
    from repro.errors import ConfigurationError
    with pytest.raises(ConfigurationError, match="campaign_dir"):
        run_campaign(JOBS, workers=0, checkpoint_every=1000)
    with pytest.raises(ConfigurationError, match=">= 1"):
        run_campaign(JOBS, workers=0, campaign_dir="/tmp/x",
                     checkpoint_every=0)


# -- satellite: crash-consistent JSONL result store --------------------------

def _records(n, start=0):
    return [{"job_id": f"job-{i:03d}", "status": "ok",
             "payload": {"value": i}} for i in range(start, start + n)]


def test_store_append_load_roundtrip_with_checksums(tmp_path):
    store = ResultStore(str(tmp_path))
    for record in _records(3):
        store.append(record)
    assert store.load() == _records(3)
    # the on-disk lines carry the checksum; loaded records do not
    with open(store.path) as handle:
        assert all("_crc32" in json.loads(line) for line in handle)


def test_store_skips_torn_tail_without_quarantine(tmp_path):
    """An unterminated last line is indistinguishable from a concurrent
    writer mid-append (the serve-layer tailing contract), so load()
    warns and skips it but must NOT quarantine — the writer may still
    finish that line."""
    store = ResultStore(str(tmp_path))
    for record in _records(2):
        store.append(record)
    with open(store.path, "a") as handle:
        handle.write('{"job_id": "job-9, torn mid-wri')   # SIGKILL artifact
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        assert store.load() == _records(2)
    assert any("partial tail" in str(w.message) for w in caught)
    assert not os.path.exists(store.quarantine_path)


def test_store_quarantines_terminated_damaged_tail(tmp_path):
    """A newline-terminated damaged last line is real corruption — the
    writer finished it — and is still quarantined."""
    store = ResultStore(str(tmp_path))
    for record in _records(2):
        store.append(record)
    with open(store.path, "a") as handle:
        handle.write('{"job_id": "job-9, torn but terminated\n')
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        assert store.load() == _records(2)
    assert any("damaged record" in str(w.message) for w in caught)
    with open(store.quarantine_path) as handle:
        assert "torn but terminated" in handle.read()


def test_store_recovers_records_after_a_corrupt_middle_line(tmp_path):
    store = ResultStore(str(tmp_path))
    for record in _records(4):
        store.append(record)
    with open(store.path) as handle:
        lines = handle.read().splitlines()
    # flip a payload byte inside line 1: CRC mismatch, not a JSON error
    lines[1] = lines[1].replace('"value": 1', '"value": 7')
    with open(store.path, "w") as handle:
        handle.write("\n".join(lines) + "\n")
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        loaded = store.load()
    # records before AND after the damaged line survive
    assert loaded == [r for r in _records(4) if r["payload"]["value"] != 1]
    assert any("CRC" in str(w.message) for w in caught)


def test_store_accepts_legacy_lines_without_checksum(tmp_path):
    store = ResultStore(str(tmp_path))
    legacy = {"job_id": "old-1", "status": "ok", "payload": {}}
    with open(store.path, "w") as handle:
        handle.write(json.dumps(legacy, sort_keys=True) + "\n")
    with warnings.catch_warnings():
        warnings.simplefilter("error")        # no warning expected
        assert store.load() == [legacy]


def test_store_rewrite_is_checksummed_and_loadable(tmp_path):
    store = ResultStore(str(tmp_path))
    store.rewrite(_records(5))
    assert store.load() == _records(5)
    with open(store.path) as handle:
        assert all("_crc32" in json.loads(line) for line in handle)
