"""Trace decoder: reconstruction against ground truth."""

from repro.analysis import TraceDecoder
from repro.ed.device import EdConfig, EmulationDevice
from repro.soc.config import tc1797_config
from repro.soc.memory import map as amap
from repro.workloads.program import ProgramBuilder


def build_call_program():
    builder = ProgramBuilder(code_base=amap.PSPR_BASE)
    main = builder.function("main")
    top = main.label("top")
    main.call("work")
    main.alu(2)
    main.jump(top)
    work = builder.function("work", base=amap.PSPR_BASE + 0x800)
    work.alu(3)
    work.ret()
    return builder.assemble()


def make_traced_run(cycles=3000):
    program = build_call_program()
    device = EmulationDevice(EdConfig(soc=tc1797_config()), seed=3)
    device.load_program(program)
    device.mcds.add_program_trace(sync_period=16)
    device.run(cycles)
    return program, device


def test_decoder_finds_function_entries():
    program, device = make_traced_run()
    decoder = TraceDecoder(program)
    run = decoder.decode(device.emem.contents())
    assert run.function_entries.get("work", 0) > 10
    # every call into work is matched by a discontinuity back into main
    assert run.function_entries["work"] <= len(run.discontinuities)


def test_decoder_span_covers_run():
    program, device = make_traced_run(cycles=5000)
    decoder = TraceDecoder(program)
    run = decoder.decode(device.emem.contents())
    assert run.span_cycles > 3000


def test_decoder_ignores_other_message_kinds():
    program, device = make_traced_run()
    device.mcds.add_rate_counter("ipc", ["tc.instr_executed"], 64,
                                 basis="cycles")
    device.run(1000)
    decoder = TraceDecoder(program)
    run = decoder.decode(device.emem.contents())
    assert all(addr is not None for _, addr in run.discontinuities)


def test_decoder_empty_stream():
    program, _ = make_traced_run(cycles=1)
    run = TraceDecoder(program).decode([])
    assert run.discontinuities == []
    assert run.span_cycles == 0
