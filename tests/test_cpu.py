"""TriCore CPU: issue rules, pipelines, stalls, control flow."""

import pytest

from repro.soc.config import tc1797_config
from repro.soc.cpu import isa
from repro.soc.device import Soc
from repro.soc.kernel import signals
from repro.soc.memory import map as amap
from repro.workloads.program import ProgramBuilder

from tests.helpers import make_loop_program


def run_soc(program, cycles, config=None):
    soc = Soc(config if config is not None else tc1797_config(), seed=99)
    soc.load_program(program)
    soc.run(cycles)
    return soc


def pspr_program(build_body):
    """Build a program in PSPR so fetch is single-cycle (pure issue tests)."""
    builder = ProgramBuilder(code_base=amap.PSPR_BASE)
    build_body(builder)
    return builder.assemble()


def _alu_loop(builder):
    main = builder.function("main")
    top = main.label("top")
    main.alu(16)
    main.jump(top)


def test_ip_issue_rate_is_one_per_cycle():
    program = pspr_program(_alu_loop)
    soc = run_soc(program, 1000)
    # 16 ALU + jump per iteration; jump costs branch penalty
    # regardless: never more than 1 IP retired per cycle
    assert soc.cpu.retired <= 1000
    assert soc.cpu.retired > 700


def test_ip_plus_load_dual_issue():
    def body(builder):
        main = builder.function("main")
        top = main.label("top")
        # alternating IP / LD pairs dual-issue from scratchpad
        for _ in range(8):
            main.alu(1)
            main.load(isa.FixedAddr(amap.DSPR_BASE + 0x10))
        main.jump(top)
    program = pspr_program(body)
    soc = run_soc(program, 1000)
    ipc = soc.cpu.retired / 1000
    assert ipc > 1.3   # pairs retire together


def test_loop_pipeline_zero_taken_penalty():
    def body(builder):
        main = builder.function("main")
        top = main.label("top")
        main.loop(10, lambda f: f.alu(1))
        main.jump(top)
    program = pspr_program(body)
    soc = run_soc(program, 500)
    # each iteration: 1 alu cycle + loop close in the same or next cycle;
    # taken loops add no refill bubbles, so IPC approaches 2 (alu+loop)
    ipc = soc.cpu.retired / 500
    assert ipc > 1.5


def test_taken_branch_pays_penalty():
    def body(builder):
        main = builder.function("main")
        top = main.label("top")
        main.alu(1)
        main.jump(top)
    program = pspr_program(body)
    cfg = tc1797_config()
    soc = run_soc(program, 600, cfg)
    # alu and jump dual-issue (IP + control slot) in one cycle, then the
    # taken jump adds branch_penalty refill bubbles
    per_iter = 1 + cfg.cpu.branch_penalty
    expected = 600 // per_iter * 2
    assert abs(soc.cpu.retired - expected) <= 2 * per_iter
    assert soc.hub.total(signals.TC_BRANCH_TAKEN) > 0


def test_flash_load_stalls_cpu():
    program = make_loop_program(
        alu_per_iter=2,
        load_gen=isa.FixedAddr(amap.LMU_BASE + 0x100))
    soc = run_soc(program, 2000)
    assert soc.hub.total(signals.TC_STALL_LOAD) > 0


def test_dspr_load_does_not_stall():
    def body(builder):
        main = builder.function("main")
        top = main.label("top")
        main.load(isa.FixedAddr(amap.DSPR_BASE + 4))
        main.alu(1)
        main.jump(top)
    program = pspr_program(body)
    soc = run_soc(program, 500)
    assert soc.hub.total(signals.TC_STALL_LOAD) == 0


def test_fetch_stall_on_icache_miss():
    program = make_loop_program(alu_per_iter=8)   # code in flash
    soc = run_soc(program, 300)
    assert soc.hub.total(signals.TC_STALL_FETCH) > 0
    assert soc.hub.total(signals.ICACHE_MISS) > 0


def test_call_ret_roundtrip():
    builder = ProgramBuilder(code_base=amap.PSPR_BASE)
    main = builder.function("main")
    top = main.label("top")
    main.call("helper")
    main.alu(1)
    main.jump(top)
    helper = builder.function("helper", base=amap.PSPR_BASE + 0x400)
    helper.alu(2)
    helper.ret()
    soc = run_soc(builder.assemble(), 800)
    assert soc.hub.total(signals.TC_CSA) > 0
    assert soc.cpu.retired > 100
    assert not soc.cpu._call_stack or len(soc.cpu._call_stack) <= 1


def test_ret_without_call_raises():
    builder = ProgramBuilder(code_base=amap.PSPR_BASE)
    builder.function("main").ret()
    soc = Soc(tc1797_config(), seed=1)
    soc.load_program(builder.assemble())
    with pytest.raises(RuntimeError, match="RET"):
        soc.run(10)


def test_rfe_without_interrupt_raises():
    builder = ProgramBuilder(code_base=amap.PSPR_BASE)
    builder.function("main").rfe()
    soc = Soc(tc1797_config(), seed=1)
    soc.load_program(builder.assemble())
    with pytest.raises(RuntimeError, match="RFE"):
        soc.run(10)


def test_halt_stops_retirement():
    builder = ProgramBuilder(code_base=amap.PSPR_BASE)
    builder.function("main").alu(3).halt()
    soc = Soc(tc1797_config(), seed=1)
    soc.load_program(builder.assemble())
    soc.run(100)
    assert soc.cpu.retired == 3
    assert soc.cpu.halted
    assert soc.cpu.halt_cycles > 50


def test_store_to_spb_can_stall():
    def body(builder):
        main = builder.function("main")
        top = main.label("top")
        main.store(isa.FixedAddr(amap.PERIPH_BASE + 0x100))
        main.store(isa.FixedAddr(amap.PERIPH_BASE + 0x104))
        main.jump(top)
    program = pspr_program(body)
    soc = run_soc(program, 500)
    assert soc.hub.total(signals.TC_STALL_STORE) > 0


def test_reset_restores_entry_state():
    program = make_loop_program(alu_per_iter=4)
    soc = run_soc(program, 500)
    soc.reset()
    assert soc.cpu.pc == program.entry
    assert soc.cpu.retired == 0
    assert soc.cycle == 0


def test_deterministic_across_runs():
    def run_once():
        soc = Soc(tc1797_config(), seed=77)
        soc.load_program(make_loop_program(
            alu_per_iter=3,
            load_gen=isa.TableAddr(amap.PFLASH_BASE + 0x10_0000, 4, 512,
                                   locality=0.5)))
        soc.run(3000)
        return soc.cpu.retired, soc.cpu.pc, soc.oracle()
    assert run_once() == run_once()
