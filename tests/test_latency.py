"""Latency probe: start→end pairing and interrupt-entry latency."""

import pytest

from repro.mcds.latency import LatencyProbe
from repro.soc.config import tc1797_config
from repro.soc.device import Soc
from repro.soc.kernel import signals
from repro.soc.kernel.hub import EventHub
from repro.soc.memory import map as amap
from repro.soc.peripherals.basic import PeriodicTimer
from repro.workloads.program import ProgramBuilder


def test_pairing_and_stats():
    hub = EventHub()
    hub.register("a")
    hub.register("b")
    probe = LatencyProbe(hub, "a", "b")
    for start, end in ((10, 15), (100, 102), (200, 230)):
        hub.cycle = start
        hub.emit(hub.signal_id("a"))
        hub.cycle = end
        hub.emit(hub.signal_id("b"))
    assert probe.samples == [5, 2, 30]
    assert probe.min() == 2
    assert probe.max() == 30
    assert probe.mean() == pytest.approx(37 / 3)
    assert probe.percentile(0) == 2
    assert probe.percentile(100) == 30
    assert "n=3" in probe.summary()


def test_end_without_start_ignored():
    hub = EventHub()
    hub.register("a")
    hub.register("b")
    probe = LatencyProbe(hub, "a", "b")
    hub.emit(hub.signal_id("b"))
    assert probe.samples == []


def test_pending_bound():
    hub = EventHub()
    hub.register("a")
    hub.register("b")
    probe = LatencyProbe(hub, "a", "b", max_pending=2)
    hub.emit(hub.signal_id("a"), 5)
    assert probe.dropped_starts == 3


def test_empty_stats():
    hub = EventHub()
    probe = LatencyProbe(hub, "a", "b")
    assert probe.min() is None
    assert probe.percentile(95) is None
    assert probe.mean() == 0.0
    assert "no samples" in probe.summary()


def test_interrupt_entry_latency_measured():
    soc = Soc(tc1797_config(), seed=23)
    builder = ProgramBuilder(code_base=amap.PSPR_BASE)
    builder.function("main").halt()
    isr = builder.function("isr")
    isr.alu(3)
    isr.rfe()
    soc.load_program(builder.assemble())
    srn = soc.icu.add_srn("tick", 9)
    soc.cpu.set_vector(srn.id, "isr")
    soc.add_peripheral(PeriodicTimer("t", soc.hub, soc.icu, srn.id, 500))
    probe = LatencyProbe(soc.hub, signals.IRQ_RAISED, signals.TC_IRQ_ENTRY)
    soc.run(20_000)
    assert probe.count >= 30
    # halted CPU takes the request on the very next tick
    assert probe.min() <= 2
    assert probe.max() < 50


def test_detach():
    hub = EventHub()
    hub.register("a")
    hub.register("b")
    probe = LatencyProbe(hub, "a", "b")
    probe.detach()
    hub.emit(hub.signal_id("a"))
    hub.emit(hub.signal_id("b"))
    assert probe.samples == []
