"""Instruction model, behaviour generators, and the program builder."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.soc.cpu import isa
from repro.soc.memory import map as amap
from repro.workloads.program import ProgramBuilder


# --- behaviour generators -----------------------------------------------------
def test_loop_count_sequence():
    pattern = isa.LoopCount(3)
    state = pattern.make_state()
    rng = random.Random(0)
    takes = [pattern.taken(state, rng) for _ in range(6)]
    # 3 iterations: taken, taken, fall-through; then re-armed
    assert takes == [True, True, False, True, True, False]


def test_loop_count_of_one_never_taken():
    pattern = isa.LoopCount(1)
    state = pattern.make_state()
    assert pattern.taken(state, random.Random(0)) is False


def test_loop_count_validates():
    with pytest.raises(ValueError):
        isa.LoopCount(0)


def test_taken_periodic():
    pattern = isa.TakenPeriodic(4)
    state = pattern.make_state()
    rng = random.Random(0)
    takes = [pattern.taken(state, rng) for _ in range(8)]
    assert takes == [False, False, False, True] * 2


def test_taken_probability_bounds():
    with pytest.raises(ValueError):
        isa.TakenProbability(1.5)
    always = isa.TakenProbability(1.0)
    never = isa.TakenProbability(0.0)
    rng = random.Random(1)
    assert always.taken(always.make_state(), rng)
    assert not never.taken(never.make_state(), rng)


# --- address generators ----------------------------------------------------------
def test_fixed_addr():
    gen = isa.FixedAddr(0x1234)
    assert gen.next(gen.make_state(), random.Random(0)) == 0x1234


def test_stride_addr_wraps():
    gen = isa.StrideAddr(0x1000, 4, 3)
    state = gen.make_state()
    rng = random.Random(0)
    seq = [gen.next(state, rng) for _ in range(5)]
    assert seq == [0x1000, 0x1004, 0x1008, 0x1000, 0x1004]


@settings(max_examples=50, deadline=None)
@given(entries=st.integers(1, 512), locality=st.floats(0.0, 1.0),
       seed=st.integers(0, 1000))
def test_table_addr_stays_in_bounds(entries, locality, seed):
    gen = isa.TableAddr(0x8000_0000, 4, entries, locality=locality)
    state = gen.make_state()
    rng = random.Random(seed)
    for _ in range(50):
        addr = gen.next(state, rng)
        assert 0x8000_0000 <= addr < 0x8000_0000 + entries * 4


def test_table_addr_determinism():
    def run(seed):
        gen = isa.TableAddr(0x1000, 4, 64, locality=0.8)
        state = gen.make_state()
        rng = random.Random(seed)
        return [gen.next(state, rng) for _ in range(20)]
    assert run(7) == run(7)
    assert run(7) != run(8)


# --- builder / assembler -------------------------------------------------------------
def test_assemble_assigns_sequential_addresses():
    builder = ProgramBuilder(code_base=0x8000_1000)
    main = builder.function("main")
    main.alu(3).halt()
    program = builder.assemble()
    assert program.entry == 0x8000_1000
    assert program.at(0x8000_1000).op == isa.IP
    assert program.at(0x8000_100C).op == "halt"


def test_function_alignment():
    builder = ProgramBuilder(code_base=0x8000_1000)
    builder.function("main").alu(1).halt()
    builder.function("next").alu(1).ret()
    program = builder.assemble()
    assert program.symbol("next") % 32 == 0


def test_labels_resolve_within_function():
    builder = ProgramBuilder()
    main = builder.function("main")
    top = main.label("again")
    main.alu(2)
    main.jump(top)
    program = builder.assemble()
    jump = program.at(program.entry + 2 * isa.INSTR_BYTES)
    assert jump.target == program.entry


def test_loop_targets_loop_top():
    builder = ProgramBuilder()
    main = builder.function("main")
    main.loop(4, lambda f: f.alu(2))
    main.halt()
    program = builder.assemble()
    loop_instr = program.at(program.entry + 2 * isa.INSTR_BYTES)
    assert loop_instr.op == isa.LOOP
    assert loop_instr.target == program.entry


def test_call_resolves_cross_function():
    builder = ProgramBuilder()
    builder.function("main").call("helper").halt()
    builder.function("helper").alu(1).ret()
    program = builder.assemble()
    call = program.at(program.entry)
    assert call.target == program.symbol("helper")


def test_pinned_function_base():
    builder = ProgramBuilder()
    builder.function("main").halt()
    builder.function("fast", base=amap.PSPR_BASE).alu(1).rfe()
    program = builder.assemble()
    assert program.symbol("fast") == amap.PSPR_BASE


def test_duplicate_function_rejected():
    builder = ProgramBuilder()
    builder.function("main")
    with pytest.raises(ValueError):
        builder.function("main")


def test_unresolved_symbol_rejected():
    builder = ProgramBuilder()
    builder.function("main").call("ghost")
    with pytest.raises(ValueError, match="ghost"):
        builder.assemble()


def test_missing_entry_rejected():
    builder = ProgramBuilder()
    builder.function("other").ret()
    with pytest.raises(ValueError):
        builder.assemble(entry="main")


def test_empty_builder_rejected():
    with pytest.raises(ValueError):
        ProgramBuilder().assemble()


def test_function_of_attribution():
    builder = ProgramBuilder()
    builder.function("main").alu(4).halt()
    builder.function("second").alu(2).ret()
    program = builder.assemble()
    assert program.function_of(program.symbol("second") + 4) == "second"
    assert program.function_of(program.entry) == "main"


def test_program_len_counts_instructions():
    builder = ProgramBuilder()
    builder.function("main").alu(5).halt()
    assert len(builder.assemble()) == 6


def test_at_unknown_address_raises():
    builder = ProgramBuilder()
    builder.function("main").halt()
    program = builder.assemble()
    with pytest.raises(KeyError):
        program.at(0xDEAD_0000)
