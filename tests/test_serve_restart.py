"""The SIGKILL drill: kill a live `repro serve` mid-campaign, restart it
against the same root, and hold the service to the recovery contract:

* every admitted campaign is re-admitted from the journal, in order;
* the interrupted campaign *resumes* (store prefix + checkpoint), and
  its final aggregate is byte-identical to an uninterrupted offline run;
* a replayed ``Idempotency-Key`` never double-admits, even across the
  process boundary.

This file doubles as the CI ``restart-recovery`` lane.
"""

import json
import os
import re
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

from repro.fleet import CampaignSpec, run_campaign

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: slow enough (~5s of simulation) that the SIGKILL lands mid-campaign
VICTIM_SPEC = {"count": 4, "cycles": 120_000, "seed": 9}
QUEUED_SPEC = {"count": 2, "cycles": 8_000, "seed": 9}


def start_server(root, cwd):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    env["PYTHONUNBUFFERED"] = "1"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--root", str(root), "--checkpoint-every", "4000"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, env=env,
        cwd=str(cwd), text=True)
    line = proc.stdout.readline()
    match = re.search(r"listening on (http://[\d.]+:\d+)", line)
    assert match, f"no listen line, got {line!r}"
    return proc, match.group(1)


def get_json(url):
    with urllib.request.urlopen(url, timeout=30) as resp:
        return json.loads(resp.read())


def post_campaign(base, spec, tenant="drill", idempotency_key=None):
    headers = {"X-Tenant": tenant}
    if idempotency_key:
        headers["Idempotency-Key"] = idempotency_key
    req = urllib.request.Request(
        base + "/v1/campaigns", data=json.dumps(spec).encode(),
        headers=headers)
    with urllib.request.urlopen(req, timeout=30) as resp:
        return json.loads(resp.read())


def wait_for_state(base, cid, states, timeout=120.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        status = get_json(base + f"/v1/campaigns/{cid}")
        if status["state"] in states:
            return status
        time.sleep(0.05)
    raise AssertionError(
        f"{cid} never reached {states}; last: {status['state']}")


def test_sigkill_restart_recovers_and_resumes(tmp_path):
    root = tmp_path / "serve"
    proc, base = start_server(root, tmp_path)
    try:
        victim = post_campaign(base, VICTIM_SPEC,
                               idempotency_key="victim-1")["id"]
        queued = post_campaign(base, QUEUED_SPEC)["id"]
        # wait for the victim's FIRST durable result by watching its
        # store file directly (HTTP polls stall for seconds while the
        # compute thread holds the GIL, wide enough for the campaign to
        # finish under us), then KILL — no drain, nothing flushed beyond
        # what already hit the disk
        store_path = root / "campaigns" / victim / "campaign.jsonl"
        deadline = time.time() + 90
        while time.time() < deadline:
            if store_path.exists() and \
                    open(store_path).read().count("\n") >= 1:
                break
            time.sleep(0.02)
        else:
            raise AssertionError("victim produced no results to resume on")
    finally:
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)

    # the journal survived the kill and still folds
    assert os.path.exists(root / "journal.jsonl")

    proc, base = start_server(root, tmp_path)
    try:
        # both campaigns were re-admitted, ids intact, admission order
        # preserved in the overview
        overview = get_json(base + "/v1/campaigns")
        recovered = {c["id"]: c for c in overview["campaigns"]}
        assert victim in recovered and queued in recovered
        assert recovered[victim]["recovered"] is True
        # the kill landed mid-campaign: the victim came back as work to
        # finish, not as a terminal record
        assert recovered[victim]["state"] in ("queued", "running")

        # idempotent re-POST of the victim maps to the original id —
        # the client's retry after the outage does not double-admit
        replay = post_campaign(base, VICTIM_SPEC,
                               idempotency_key="victim-1")
        assert replay["id"] == victim

        # a fresh submission gets a fresh id beyond the watermark
        fresh = post_campaign(base, QUEUED_SPEC)["id"]
        assert fresh not in (victim, queued)

        # everything runs to completion, the victim via the resume path
        for cid in (victim, queued, fresh):
            wait_for_state(base, cid, ("completed",), timeout=240.0)
        victim_status = get_json(base + f"/v1/campaigns/{victim}")
        assert victim_status["attempts"] >= 2      # dispatched as a resume

        with urllib.request.urlopen(
                base + f"/v1/campaigns/{victim}/aggregate",
                timeout=30) as resp:
            served_aggregate = resp.read()

        # recovery is visible in the metrics
        with urllib.request.urlopen(base + "/metrics", timeout=30) as resp:
            metrics = resp.read().decode()
        assert 'repro_resilience_recovered_total{disposition="requeued"} 2' \
            in metrics
        assert "repro_resilience_idempotent_replays_total 1" in metrics
    finally:
        proc.send_signal(signal.SIGINT)
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()

    # the acceptance bar: byte-identical to an uninterrupted offline run
    offline = run_campaign(CampaignSpec(**VICTIM_SPEC), workers=0,
                           campaign_dir=str(tmp_path / "offline"))
    with open(offline.aggregate_path, "rb") as handle:
        assert served_aggregate == handle.read()


def test_double_crash_recovery_is_stable(tmp_path):
    """Recovery itself is crash-safe: kill → restart → kill → restart
    loses nothing, compaction keeps the journal bounded, and ids stay
    collision-free across every generation."""
    root = tmp_path / "serve"
    proc, base = start_server(root, tmp_path)
    try:
        first = post_campaign(base, QUEUED_SPEC,
                              idempotency_key="gen-1")["id"]
        wait_for_state(base, first, ("running", "completed"))
    finally:
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)

    proc, base = start_server(root, tmp_path)
    try:
        second = post_campaign(base, QUEUED_SPEC)["id"]
        assert second != first
        wait_for_state(base, second, ("queued", "running", "completed"))
    finally:
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)

    proc, base = start_server(root, tmp_path)
    try:
        overview = get_json(base + "/v1/campaigns")
        ids = {c["id"] for c in overview["campaigns"]}
        assert {first, second} <= ids
        # idempotency map survived two crashes
        assert post_campaign(base, QUEUED_SPEC,
                             idempotency_key="gen-1")["id"] == first
        third = post_campaign(base, QUEUED_SPEC)["id"]
        assert third not in ids
        for cid in (first, second, third):
            wait_for_state(base, cid, ("completed",), timeout=240.0)
    finally:
        proc.send_signal(signal.SIGINT)
        try:
            proc.wait(timeout=60)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()
