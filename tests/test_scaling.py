"""Frequency-scaling study: simulated curve, analytic prediction, gap."""

import pytest

from repro.core.optimization import (OptionEvaluator, predict_scaling,
                                     scaling_table, simulate_scaling)
from repro.soc.config import tc1797_config
from repro.workloads.engine import EngineControlScenario

FREQS = (90, 180, 360)


@pytest.fixture(scope="module")
def simulated():
    return simulate_scaling(EngineControlScenario(), tc1797_config(),
                            FREQS, work_instructions=60_000, seed=46)


def test_wait_states_grow_with_frequency(simulated):
    ws = [p.wait_states for p in simulated]
    assert ws == sorted(ws)
    assert ws[-1] > ws[0]


def test_sublinear_scaling(simulated):
    """Doubling the clock never doubles delivered performance."""
    by_freq = {p.frequency_mhz: p for p in simulated}
    assert by_freq[180].relative_performance < 2.0
    assert by_freq[360].relative_performance < 4.0
    # but performance still rises monotonically
    perfs = [p.relative_performance for p in simulated]
    assert perfs == sorted(perfs)


def test_cpi_degrades_with_frequency(simulated):
    cpis = [p.cpi for p in simulated]
    assert cpis[-1] > cpis[0]


def test_analytic_prediction_tracks_simulation(simulated):
    evaluator = OptionEvaluator(EngineControlScenario(), tc1797_config(), [],
                                work_instructions=60_000, seed=46)
    context = evaluator.run_baseline()
    predicted = predict_scaling(context, FREQS)
    for sim, pred in zip(simulated, predicted):
        assert pred.relative_performance == pytest.approx(
            sim.relative_performance, rel=0.15)


def test_scaling_table_renders(simulated):
    table = scaling_table(simulated)
    assert "scaling gap" in table
    assert "360" in table


def test_architecture_option_improves_scaling():
    def bigger_icache(config):
        config.icache.size_bytes *= 2

    base = simulate_scaling(EngineControlScenario(), tc1797_config(),
                            (180, 360), work_instructions=60_000, seed=46)
    improved = simulate_scaling(EngineControlScenario(), tc1797_config(),
                                (180, 360), work_instructions=60_000,
                                seed=46, configure=bigger_icache)
    # at the high-frequency point the flash fix recovers scaling headroom
    assert improved[-1].cpi < base[-1].cpi
