"""DMA controller: transfers, completion interrupts, fairness, contention."""

import pytest

from repro.soc.config import tc1797_config
from repro.soc.cpu import isa
from repro.soc.device import Soc
from repro.soc.dma.controller import DmaChannelConfig
from repro.soc.kernel import signals
from repro.soc.memory import map as amap
from repro.workloads.program import ProgramBuilder


def make_soc():
    soc = Soc(tc1797_config(), seed=5)
    builder = ProgramBuilder(code_base=amap.PSPR_BASE)
    builder.function("main").halt()
    soc.load_program(builder.assemble())
    return soc


def test_unconfigured_channel_rejected():
    soc = make_soc()
    with pytest.raises(KeyError):
        soc.dma.trigger(0)
    with pytest.raises(ValueError):
        soc.dma.configure_channel(99, DmaChannelConfig(
            src=amap.LMU_BASE, dst=amap.DSPR_BASE, moves=1))


def test_transfer_moves_and_completion():
    soc = make_soc()
    soc.dma.configure_channel(0, DmaChannelConfig(
        src=amap.LMU_BASE, dst=amap.DSPR_BASE + 0x100, moves=6))
    soc._ensure_order()
    soc.dma.trigger(0)
    soc.run(200)
    assert soc.hub.total(signals.DMA_MOVE) == 6
    assert soc.hub.total(signals.DMA_XFER_DONE) == 1
    assert soc.dma.transfers_done == 1


def test_completion_srn_raised():
    soc = make_soc()
    done_srn = soc.icu.add_srn("done", 3)
    soc.dma.configure_channel(0, DmaChannelConfig(
        src=amap.LMU_BASE, dst=amap.DSPR_BASE + 0x100, moves=2,
        completion_srn=done_srn.id))
    soc._ensure_order()
    soc.dma.trigger(0)
    soc.run(100)
    assert done_srn.raised_count == 1


def test_retrigger_while_busy_queues_one_block():
    soc = make_soc()
    soc.dma.configure_channel(0, DmaChannelConfig(
        src=amap.LMU_BASE, dst=amap.DSPR_BASE + 0x100, moves=4))
    soc._ensure_order()
    soc.dma.trigger(0)
    soc.dma.trigger(0)   # queued
    soc.run(300)
    assert soc.dma.transfers_done == 2
    assert soc.hub.total(signals.DMA_MOVE) == 8


def test_round_robin_between_channels():
    soc = make_soc()
    for ch in (0, 1):
        soc.dma.configure_channel(ch, DmaChannelConfig(
            src=amap.LMU_BASE + ch * 0x100, dst=amap.DSPR_BASE + ch * 0x100,
            moves=5))
    soc._ensure_order()
    soc.dma.trigger(0)
    soc.dma.trigger(1)
    soc.run(400)
    assert soc.dma.transfers_done == 2


def test_dma_contends_with_cpu_on_spb():
    soc = Soc(tc1797_config(), seed=5)
    builder = ProgramBuilder(code_base=amap.PSPR_BASE)
    main = builder.function("main")
    top = main.label("top")
    main.load(isa.FixedAddr(amap.PERIPH_BASE + 0x100))
    main.alu(1)
    main.jump(top)
    soc.load_program(builder.assemble())
    soc.dma.configure_channel(0, DmaChannelConfig(
        src=amap.PERIPH_BASE + 0x300, dst=amap.LMU_BASE + 0x100, moves=64))
    soc._ensure_order()
    soc.dma.trigger(0)
    soc.run(500)
    assert soc.hub.total(signals.SPB_CONTENTION) > 0


def test_addresses_walk_with_stride():
    soc = make_soc()
    seen = []
    soc.memory.watchers.append(
        lambda c, a, w, m: seen.append((a, w)) if m == "dma" else None)
    soc.dma.configure_channel(0, DmaChannelConfig(
        src=amap.LMU_BASE, dst=amap.DSPR_BASE + 0x100, moves=3, stride=8))
    soc._ensure_order()
    soc.dma.trigger(0)
    soc.run(100)
    reads = [a for a, w in seen if not w]
    assert reads == [amap.LMU_BASE, amap.LMU_BASE + 8, amap.LMU_BASE + 16]


def test_dma_reset():
    soc = make_soc()
    soc.dma.configure_channel(0, DmaChannelConfig(
        src=amap.LMU_BASE, dst=amap.DSPR_BASE + 0x100, moves=50))
    soc._ensure_order()
    soc.dma.trigger(0)
    soc.run(10)
    soc.reset()
    assert soc.dma.transfers_done == 0
    soc.run(5)
    assert soc.hub.total(signals.DMA_MOVE) == 0
