"""Property tests: EMEM accounting conservation under arbitrary traffic."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ed.emem import FILL, RING, EmulationMemory
from repro.mcds.messages import TraceMessage


def msg(index, bits):
    return TraceMessage("rate_sample", index, bits, "s", index)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(8, 4000), min_size=1, max_size=120),
       st.sampled_from([RING, FILL]))
def test_store_conservation(bit_sizes, mode):
    """stored == buffered + wrapped + rejected, and capacity never exceeded."""
    emem = EmulationMemory(total_kb=1, mode=mode)
    for index, bits in enumerate(bit_sizes):
        emem.store(msg(index, bits))
        assert emem.stored_bits <= emem.capacity_bits
    assert (emem.total_stored
            == emem.message_count + emem.lost_oldest + emem.lost_new)
    assert emem.stored_bits == sum(m.bits for m in emem.contents())


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(8, 500), min_size=1, max_size=80),
       st.integers(1, 2000))
def test_pop_front_conservation(bit_sizes, budget):
    emem = EmulationMemory(total_kb=64)
    for index, bits in enumerate(bit_sizes):
        emem.store(msg(index, bits))
    before = emem.message_count
    popped, popped_bits = emem.pop_front(budget)
    assert popped_bits <= budget
    assert popped_bits == sum(m.bits for m in popped)
    assert emem.message_count == before - len(popped)
    # FIFO order preserved
    assert [m.cycle for m in popped] == sorted(m.cycle for m in popped)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(8, 2000), min_size=1, max_size=80),
       st.floats(0.05, 0.9))
def test_trigger_stop_freezes_eventually(bit_sizes, fraction):
    emem = EmulationMemory(total_kb=1)
    emem.trigger_stop(0, post_trigger_fraction=fraction)
    budget = int(emem.capacity_bits * fraction)
    accepted = 0
    for index, bits in enumerate(bit_sizes):
        emem.store(msg(index, bits))
        if not emem.frozen:
            accepted += bits
    if sum(bit_sizes) > budget:
        assert emem.frozen
