"""CampaignService: scheduling, streaming, quotas, preemption e2e.

The acceptance property of the whole subsystem: campaigns submitted to
the service — including ones evicted mid-flight by higher-priority work
and later resumed — produce aggregates byte-identical to the same specs
run offline through ``repro.fleet.run_campaign``.
"""

import asyncio
import json

import pytest

from repro.errors import QuotaExceeded
from repro.fleet import CampaignSpec, run_campaign
from repro.serve import CampaignService, QuotaManager, TenantPolicy

SMALL = {"count": 2, "cycles": 8_000, "seed": 9}
#: long enough (~0.4s/job) that an eviction can land mid-campaign
LONG = {"count": 2, "cycles": 40_000, "seed": 9}


def open_quota():
    """Quotas wide open — these tests exercise scheduling, not admission."""
    return QuotaManager(default=TenantPolicy(burst=100, refill_per_s=100,
                                             max_queued=100))


async def wait_for(predicate, timeout=90.0, interval=0.02):
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError("condition not reached in time")
        await asyncio.sleep(interval)


def event_names(campaign):
    events, _ = campaign.buffer.since(0)
    return [name for _, name, _ in events]


def run(coro):
    return asyncio.run(coro)


def test_submit_runs_to_completion_and_streams(tmp_path):
    async def main():
        service = CampaignService(root=str(tmp_path / "serve"),
                                  quota=open_quota(), slots=1,
                                  checkpoint_every=4_000)
        await service.start()
        try:
            campaign = service.submit("t1", dict(SMALL))
            assert campaign.state == "queued"
            assert campaign.jobs_total == 2
            await wait_for(lambda: campaign.state == "completed")
        finally:
            await service.stop()
        names = event_names(campaign)
        assert names[0] == "campaign.queued"
        assert "campaign.started" in names
        assert names.count("job.result") == 2
        assert names[-1] == "campaign.completed"
        assert campaign.buffer.closed
        assert campaign.results_streamed == 2
        assert campaign.aggregate_path is not None
        # metrics reflect the lifecycle
        reg = service.registry
        assert reg.get("repro_serve_campaigns_total") \
            .value("t1", "admitted") == 1
        assert reg.get("repro_serve_campaigns_total") \
            .value("t1", "completed") == 1
        assert reg.get("repro_serve_results_streamed_total").value() == 2
        # results page serves the full store incrementally
        page = service.results_page(campaign, 0)
        assert len(page["records"]) == 2 and page["complete"]
        tail = service.results_page(campaign, page["next_offset"])
        assert tail["records"] == []
    run(main())


def test_service_aggregate_matches_offline_run(tmp_path):
    async def main():
        service = CampaignService(root=str(tmp_path / "serve"),
                                  quota=open_quota(),
                                  checkpoint_every=4_000)
        await service.start()
        try:
            campaign = service.submit("t1", dict(SMALL))
            await wait_for(lambda: campaign.state == "completed")
        finally:
            await service.stop()
        return campaign
    campaign = run(main())
    offline = run_campaign(CampaignSpec(**SMALL), workers=0,
                           campaign_dir=str(tmp_path / "offline"))
    with open(campaign.aggregate_path, "rb") as a, \
            open(offline.aggregate_path, "rb") as b:
        assert a.read() == b.read()


def test_quota_rejection_counts_and_raises(tmp_path):
    async def main():
        quota = QuotaManager(default=TenantPolicy(
            burst=1, refill_per_s=0.0, max_queued=100))
        service = CampaignService(root=str(tmp_path / "serve"),
                                  quota=quota)
        await service.start()
        try:
            service.submit("t1", dict(SMALL))
            with pytest.raises(QuotaExceeded) as exc:
                service.submit("t1", dict(SMALL))
            assert exc.value.retry_after_s == float("inf")
            assert service.registry.get("repro_serve_campaigns_total") \
                .value("t1", "rejected") == 1
        finally:
            await service.stop()
    run(main())


def test_bad_spec_rejected_before_admission(tmp_path):
    async def main():
        service = CampaignService(root=str(tmp_path / "serve"),
                                  quota=open_quota())
        await service.start()
        try:
            with pytest.raises(ValueError, match="unknown campaign spec"):
                service.submit("t1", {"cycle": 1000})
            with pytest.raises(ValueError, match="priority"):
                service.submit("t1", {"priority": "urgent"})
        finally:
            await service.stop()
        assert service.campaigns == {}
    run(main())


def test_preemption_at_checkpoint_boundary_byte_identical(tmp_path):
    """The tentpole e2e: two tenants, overlapping campaigns, one slot.

    Tenant A's long low-priority campaign is running when tenant B
    submits a higher-priority one.  A must yield at a checkpoint
    boundary, B runs to completion, A resumes and also completes — and
    BOTH aggregates are byte-identical to offline runs of the same
    specs (eviction never changes the science).
    """
    async def main():
        service = CampaignService(root=str(tmp_path / "serve"),
                                  quota=open_quota(), slots=1,
                                  checkpoint_every=4_000)
        await service.start()
        try:
            low = service.submit("tenant-a",
                                 dict(LONG, priority=0))
            await wait_for(lambda: low.state == "running")
            await asyncio.sleep(0.1)       # let A get past a checkpoint
            high = service.submit("tenant-b",
                                  dict(SMALL, priority=5))
            # A is evicted at a checkpoint boundary...
            await wait_for(lambda: low.evictions >= 1)
            # ...B completes while A waits...
            await wait_for(lambda: high.state == "completed")
            # ...then A resumes and completes too
            await wait_for(lambda: low.state == "completed")
        finally:
            await service.stop()
        return low, high
    low, high = run(main())

    assert low.evictions >= 1 and low.attempts >= 2
    low_names = event_names(low)
    assert "campaign.evicting" in low_names
    assert "campaign.evicted" in low_names
    # the resumed start is marked as such
    events, _ = low.buffer.since(0)
    restarts = [json.loads(d) for _, n, d in events
                if n == "campaign.started"]
    assert restarts[0]["resumed"] is False
    assert restarts[-1]["resumed"] is True
    # a job result is streamed exactly once even though the resume
    # replays the store from byte 0
    assert low_names.count("job.result") == 2
    assert high.evictions == 0

    offline_low = run_campaign(CampaignSpec(**LONG), workers=0,
                               campaign_dir=str(tmp_path / "off-low"))
    offline_high = run_campaign(CampaignSpec(**SMALL), workers=0,
                                campaign_dir=str(tmp_path / "off-high"))
    for campaign, offline in ((low, offline_low), (high, offline_high)):
        with open(campaign.aggregate_path, "rb") as a, \
                open(offline.aggregate_path, "rb") as b:
            assert a.read() == b.read()


def test_weighted_tenant_gets_more_slots_over_time(tmp_path):
    """With equal priorities, dispatch order follows fair-queue weights."""
    async def main():
        quota = QuotaManager(
            default=TenantPolicy(burst=100, refill_per_s=100,
                                 max_queued=100),
            overrides={"heavy": TenantPolicy(weight=2.0, burst=100,
                                             refill_per_s=100,
                                             max_queued=100)})
        service = CampaignService(root=str(tmp_path / "serve"),
                                  quota=quota, slots=1,
                                  checkpoint_every=4_000)
        # don't start the scheduler: we only inspect queue order
        submitted = []
        for i in range(4):
            submitted.append(service.submit("heavy", dict(SMALL)))
        for i in range(2):
            submitted.append(service.submit("light", dict(SMALL)))
        order = [service.campaigns[e.campaign_id].tenant
                 for e in service.queue.entries()]
        assert order == ["heavy", "heavy", "light", "heavy",
                         "heavy", "light"]
        await service.stop()
    run(main())
