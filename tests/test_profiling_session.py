"""Profiling sessions: spec -> counters -> decoded series vs oracle."""

import pytest

from repro.core.profiling import ProfilingSession, spec
from repro.ed.device import EdConfig, EmulationDevice
from repro.soc.config import tc1797_config
from repro.soc.cpu import isa
from repro.soc.kernel import signals
from repro.soc.memory import map as amap

from tests.helpers import make_loop_program


def make_device(seed=13):
    device = EmulationDevice(EdConfig(soc=tc1797_config()), seed=seed)
    device.load_program(make_loop_program(
        alu_per_iter=3,
        load_gen=isa.TableAddr(amap.PFLASH_BASE + 0x10_0000, 4, 2048,
                               locality=0.6)))
    return device


def test_spec_validation():
    with pytest.raises(ValueError):
        spec.ParameterSpec("x", ("ev",), 0)
    with pytest.raises(ValueError):
        spec.ParameterSpec("x", (), 10)


def test_duplicate_names_rejected():
    device = make_device()
    with pytest.raises(ValueError):
        ProfilingSession(device, [spec.ipc(), spec.ipc()])


def test_ipc_series_matches_oracle():
    device = make_device()
    session = ProfilingSession(device, [spec.ipc(resolution=256)])
    result = session.run(20_000)
    measured = result.mean_rate("tc.ipc")
    oracle = device.soc.ipc()
    assert measured == pytest.approx(oracle, rel=0.02)
    assert len(result["tc.ipc"]) == 20_000 // 256


def test_event_rate_matches_oracle():
    device = make_device()
    session = ProfilingSession(
        device, [spec.flash_data_access_rate(per=100)])
    result = session.run(20_000)
    counts = device.oracle()
    oracle_rate = (counts[signals.PFLASH_DATA_ACCESS]
                   / counts[signals.TC_INSTR])
    assert result.mean_rate("flash.data_access_rate") == pytest.approx(
        oracle_rate, rel=0.05)


def test_parallel_measurement_all_series_filled():
    """Paper Section 5: all parameters measured dynamically AND in parallel."""
    device = make_device()
    session = ProfilingSession(device, spec.engine_parameter_set())
    result = session.run(30_000)
    for name in ("tc.ipc", "icache.miss_rate", "flash.data_access_rate",
                 "dspr.access_rate", "tc.load_stall_rate"):
        assert len(result[name]) > 5, name


def test_bandwidth_accounting():
    device = make_device()
    session = ProfilingSession(device, [spec.ipc(resolution=64)])
    result = session.run(50_000)
    assert result.trace_bits > 0
    assert result.bandwidth_mbps() > 0
    # finer resolution costs more bandwidth
    device2 = make_device()
    session2 = ProfilingSession(device2, [spec.ipc(resolution=1024)])
    result2 = session2.run(50_000)
    assert result2.trace_bits < result.trace_bits


def test_detach_frees_counters():
    device = make_device()
    session = ProfilingSession(device, spec.engine_parameter_set())
    session.run(1000)
    before = len(device.mcds.rate_counters)
    session.detach()
    assert len(device.mcds.rate_counters) == before - len(session.specs) \
        or len(device.mcds.rate_counters) == 0
    # a new session can allocate again without hitting the hardware limit
    ProfilingSession(device, spec.engine_parameter_set())


def test_counter_structure_limit_enforced():
    device = make_device()
    with pytest.raises(RuntimeError):
        for i in range(20):
            device.mcds.add_rate_counter(f"c{i}", ["tc.instr_executed"], 100)


def test_lossy_postmortem_capture_marks_degradation():
    # a ring-mode EMEM far too small for the run wraps away early samples;
    # the result must account every loss and mark the affected windows
    device = EmulationDevice(EdConfig(soc=tc1797_config(), emem_kb=1),
                             seed=13)
    device.load_program(make_loop_program(
        alu_per_iter=3,
        load_gen=isa.TableAddr(amap.PFLASH_BASE + 0x10_0000, 4, 2048,
                               locality=0.6)))
    session = ProfilingSession(device, [spec.ipc(resolution=32)])
    result = session.run(60_000)
    stats = device.emem.stats()
    assert stats["overrun"]
    assert stats["lost_oldest"] > 0
    assert stats["dropped_messages"] == result.lost_messages
    assert stats["gaps"] == len(device.emem.gaps) > 0
    assert result.gaps
    assert result.degraded_samples > 0
    # gap accounting is side-band: it never displaces buffered messages
    assert stats["stored_bits"] <= stats["capacity_bits"]


def test_clean_postmortem_capture_has_no_gap_accounting():
    device = make_device()
    session = ProfilingSession(device, [spec.ipc(resolution=256)])
    result = session.run(20_000)
    stats = device.emem.stats()
    assert not stats["overrun"]
    assert stats["dropped_messages"] == 0
    assert stats["gaps"] == 0
    assert result.gaps == []
    assert result.degraded_samples == 0
    assert result.healthy


def test_summary_table_renders():
    device = make_device()
    session = ProfilingSession(device, [spec.ipc(), spec.icache_miss_rate()])
    result = session.run(5000)
    table = result.summary_table()
    assert "tc.ipc" in table
    assert "Mbit/s" in table


def test_paper_example_semantics():
    """'4 I-cache misses per 100 executed instructions -> 96 % hit rate'."""
    device = make_device()
    session = ProfilingSession(device, [spec.icache_miss_rate(per=100)])
    result = session.run(20_000)
    miss_per_100 = result.mean_rate("icache.miss_rate") * 100
    hit_rate_paper = 100.0 - miss_per_100
    assert 0 <= miss_per_100 < 100
    assert hit_rate_paper == pytest.approx(
        100 - 100 * device.oracle()[signals.ICACHE_MISS]
        / device.oracle()[signals.TC_INSTR], abs=1.0)
