"""The programmatic campaign API: spec validation and CLI equivalence."""

import pytest

from repro.fleet import CampaignSpec, jobs_for, run_campaign

SPEC = dict(count=2, cycles=8_000, seed=9)


def test_defaults_are_the_cli_defaults():
    spec = CampaignSpec()
    assert spec.count == 8
    assert spec.cycles == 100_000
    assert spec.device == "tc1797"
    assert spec.seed == 2008


def test_spec_round_trips_through_dict():
    spec = CampaignSpec(**SPEC)
    assert CampaignSpec.from_dict(spec.to_dict()) == spec


def test_from_dict_rejects_unknown_fields():
    with pytest.raises(ValueError, match="cycle"):
        CampaignSpec.from_dict({"cycle": 1000})     # typo'd "cycles"


def test_bounds_enforced():
    with pytest.raises(ValueError, match="count"):
        CampaignSpec(count=0)
    with pytest.raises(ValueError, match="count"):
        CampaignSpec(count=CampaignSpec.MAX_COUNT + 1)
    with pytest.raises(ValueError, match="cycles"):
        CampaignSpec(cycles=CampaignSpec.MAX_CYCLES + 1)
    with pytest.raises(ValueError, match="device"):
        CampaignSpec(device="tc9999")
    with pytest.raises(ValueError, match="ipc_resolution"):
        CampaignSpec(ipc_resolution=0)


def test_build_jobs_deterministic_and_drill_appends():
    spec = CampaignSpec(**SPEC)
    jobs = spec.build_jobs()
    assert [j.job_id for j in jobs] == \
        [j.job_id for j in spec.build_jobs()]
    drilled = CampaignSpec(drill=True, **SPEC).build_jobs()
    assert len(drilled) == len(jobs) + 1
    assert drilled[-1].fault == "crash"


def test_explicit_jobs_spec():
    base = CampaignSpec(**SPEC).build_jobs()
    spec = CampaignSpec(jobs=tuple(j.to_dict() for j in base))
    rebuilt = spec.build_jobs()
    assert [j.job_id for j in rebuilt] == [j.job_id for j in base]
    with pytest.raises(ValueError, match="empty"):
        CampaignSpec(jobs=())
    with pytest.raises(ValueError, match="no generated population"):
        spec.customers()


def test_jobs_for_accepts_all_three_forms():
    spec = CampaignSpec(**SPEC)
    from_spec = jobs_for(spec)
    from_dict = jobs_for(SPEC)
    from_list = jobs_for(from_spec)
    assert [j.job_id for j in from_spec] == [j.job_id for j in from_dict]
    assert from_list == from_spec
    with pytest.raises(ValueError, match="CampaignJob"):
        jobs_for(["not-a-job"])


def test_run_campaign_rejects_unknown_kwargs():
    with pytest.raises(ValueError, match="unknown runner options"):
        run_campaign(CampaignSpec(**SPEC), worker=4)    # typo'd "workers"


def test_spec_and_job_list_runs_byte_identical(tmp_path):
    """The service path (spec) and the legacy path (job list) agree."""
    spec = CampaignSpec(**SPEC)
    by_spec = run_campaign(spec, workers=0,
                           campaign_dir=str(tmp_path / "spec"))
    by_jobs = run_campaign(spec.build_jobs(), workers=0,
                           campaign_dir=str(tmp_path / "jobs"))
    with open(by_spec.aggregate_path, "rb") as a, \
            open(by_jobs.aggregate_path, "rb") as b:
        assert a.read() == b.read()
