"""Profile export: JSON and CSV serialisation plus round-trip loaders."""

import csv
import io
import json

import numpy as np
import pytest

from repro.core.profiling import ProfilingSession, spec
from repro.core.profiling.export import (result_from_csv, result_from_json,
                                         result_to_json, series_to_csv,
                                         summary_to_csv)
from repro.ed.device import EdConfig, EmulationDevice
from repro.soc.config import tc1797_config
from repro.soc.cpu import isa
from repro.soc.memory import map as amap

from tests.helpers import make_loop_program


@pytest.fixture(scope="module")
def result():
    device = EmulationDevice(EdConfig(soc=tc1797_config()), seed=48)
    device.load_program(make_loop_program(
        alu_per_iter=3,
        load_gen=isa.FixedAddr(amap.DSPR_BASE + 0x40)))
    session = ProfilingSession(device, [spec.ipc(resolution=256),
                                        spec.icache_miss_rate()])
    return session.run(30_000)


def test_json_roundtrip_rebuilds_result(result):
    text = result_to_json(result)
    loaded = result_from_json(text)
    assert loaded.cycles_run == 30_000
    assert set(loaded.names) == {"tc.ipc", "icache.miss_rate"}
    ipc = loaded["tc.ipc"]
    assert ipc.spec.resolution == 256
    assert ipc.spec == result["tc.ipc"].spec
    assert len(ipc) == len(result["tc.ipc"])
    assert np.array_equal(ipc.cycles, result["tc.ipc"].cycles)
    assert np.array_equal(ipc.values, result["tc.ipc"].values)
    assert loaded.mean_rate("tc.ipc") == pytest.approx(
        result.mean_rate("tc.ipc"))
    assert loaded.bandwidth_mbps() == pytest.approx(result.bandwidth_mbps())


def test_json_reexport_is_byte_identical(result):
    """Stable serialisation: load + re-export reproduces the exact bytes."""
    text = result_to_json(result)
    assert result_to_json(result_from_json(text)) == text
    compact = result_to_json(result, compact=True)
    assert result_to_json(result_from_json(compact), compact=True) == compact
    assert "\n" not in compact
    assert json.loads(compact) == json.loads(text)


def test_json_without_series(result):
    payload = json.loads(result_to_json(result, include_series=False))
    assert "cycles" not in payload["parameters"]["tc.ipc"]


def test_summary_only_export_cannot_roundtrip(result):
    with pytest.raises(ValueError, match="summary-only"):
        result_from_json(result_to_json(result, include_series=False))


def test_from_json_rejects_garbage():
    with pytest.raises(ValueError):
        result_from_json('{"hello": 1}')
    with pytest.raises(ValueError):
        result_from_json('[1, 2, 3]')


def test_series_csv_long_format(result):
    rows = list(csv.reader(io.StringIO(series_to_csv(result))))
    assert rows[0] == ["parameter", "cycle", "value", "rate"]
    body = rows[1:]
    expected = sum(len(result[name]) for name in result.names)
    assert len(body) == expected
    parameters = {row[0] for row in body}
    assert parameters == {"tc.ipc", "icache.miss_rate"}


def test_series_csv_selected_names(result):
    rows = list(csv.reader(io.StringIO(series_to_csv(result, ["tc.ipc"]))))
    assert all(row[0] == "tc.ipc" for row in rows[1:])


def test_csv_roundtrip_with_specs(result):
    specs = {name: result[name].spec for name in result.names}
    loaded = result_from_csv(series_to_csv(result), specs=specs,
                             cycles_run=result.cycles_run,
                             frequency_mhz=result.frequency_mhz,
                             trace_bits=result.trace_bits)
    assert set(loaded.names) == set(result.names)
    for name in result.names:
        assert loaded[name].spec == result[name].spec
        assert np.array_equal(loaded[name].cycles, result[name].cycles)
        assert np.array_equal(loaded[name].values, result[name].values)
    assert loaded.cycles_run == result.cycles_run


def test_csv_roundtrip_infers_resolution(result):
    loaded = result_from_csv(series_to_csv(result))
    assert loaded["tc.ipc"].spec.resolution == 256
    assert loaded["icache.miss_rate"].spec.resolution == 100
    assert loaded.mean_rate("tc.ipc") == pytest.approx(
        result.mean_rate("tc.ipc"))
    # cycles_run defaults to the last sample cycle seen
    assert loaded.cycles_run == max(int(result[name].cycles[-1])
                                    for name in result.names)


def test_csv_rejects_garbage():
    with pytest.raises(ValueError):
        result_from_csv("a,b\n1,2\n")


def test_summary_csv(result):
    rows = list(csv.reader(io.StringIO(summary_to_csv(result))))
    assert rows[0][0] == "parameter"
    assert len(rows) == 3
    by_name = {row[0]: row for row in rows[1:]}
    assert float(by_name["tc.ipc"][4]) == pytest.approx(
        result.mean_rate("tc.ipc"))
