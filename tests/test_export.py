"""Profile export: JSON and CSV serialisation."""

import csv
import io
import json

import pytest

from repro.core.profiling import ProfilingSession, spec
from repro.core.profiling.export import (result_from_json, result_to_json,
                                         series_to_csv, summary_to_csv)
from repro.ed.device import EdConfig, EmulationDevice
from repro.soc.config import tc1797_config
from repro.soc.cpu import isa
from repro.soc.memory import map as amap

from tests.helpers import make_loop_program


@pytest.fixture(scope="module")
def result():
    device = EmulationDevice(EdConfig(soc=tc1797_config()), seed=48)
    device.load_program(make_loop_program(
        alu_per_iter=3,
        load_gen=isa.FixedAddr(amap.DSPR_BASE + 0x40)))
    session = ProfilingSession(device, [spec.ipc(resolution=256),
                                        spec.icache_miss_rate()])
    return session.run(30_000)


def test_json_roundtrip(result):
    text = result_to_json(result)
    payload = result_from_json(text)
    assert payload["cycles_run"] == 30_000
    assert set(payload["parameters"]) == {"tc.ipc", "icache.miss_rate"}
    ipc = payload["parameters"]["tc.ipc"]
    assert ipc["samples"] == len(result["tc.ipc"])
    assert ipc["mean_rate"] == pytest.approx(result.mean_rate("tc.ipc"))
    assert len(ipc["cycles"]) == ipc["samples"]


def test_json_without_series(result):
    payload = json.loads(result_to_json(result, include_series=False))
    assert "cycles" not in payload["parameters"]["tc.ipc"]


def test_from_json_rejects_garbage():
    with pytest.raises(ValueError):
        result_from_json('{"hello": 1}')


def test_series_csv_long_format(result):
    rows = list(csv.reader(io.StringIO(series_to_csv(result))))
    assert rows[0] == ["parameter", "cycle", "value", "rate"]
    body = rows[1:]
    expected = sum(len(result[name]) for name in result.names)
    assert len(body) == expected
    parameters = {row[0] for row in body}
    assert parameters == {"tc.ipc", "icache.miss_rate"}


def test_series_csv_selected_names(result):
    rows = list(csv.reader(io.StringIO(series_to_csv(result, ["tc.ipc"]))))
    assert all(row[0] == "tc.ipc" for row in rows[1:])


def test_summary_csv(result):
    rows = list(csv.reader(io.StringIO(summary_to_csv(result))))
    assert rows[0][0] == "parameter"
    assert len(rows) == 3
    by_name = {row[0]: row for row in rows[1:]}
    assert float(by_name["tc.ipc"][4]) == pytest.approx(
        result.mean_rate("tc.ipc"))
