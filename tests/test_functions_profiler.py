"""Function-level profiler: attribution and hotspot ranking."""

from repro.core.profiling import FunctionProfiler
from repro.ed.device import EdConfig, EmulationDevice
from repro.mcds.trace import TraceFanout
from repro.soc.config import tc1797_config
from repro.soc.cpu import isa
from repro.soc.memory import map as amap
from repro.workloads.program import ProgramBuilder


def build_two_function_program(hot_iters=20):
    builder = ProgramBuilder(code_base=amap.PSPR_BASE)
    main = builder.function("main")
    top = main.label("top")
    main.call("hot")
    main.call("cold")
    main.jump(top)
    hot = builder.function("hot", base=amap.PSPR_BASE + 0x800)
    hot.loop(hot_iters, lambda f: f.mac(2))
    hot.ret()
    cold = builder.function("cold", base=amap.PSPR_BASE + 0x1000)
    cold.alu(2)
    cold.ret()
    return builder.assemble()


def make_profiled_device(program):
    device = EmulationDevice(EdConfig(soc=tc1797_config()), seed=6)
    device.load_program(program)
    profiler = FunctionProfiler(program)
    device.cpu.trace = TraceFanout()
    device.cpu.trace.add(profiler)
    return device, profiler


def test_attribution_sums_to_retired():
    program = build_two_function_program()
    device, profiler = make_profiled_device(program)
    device.run(2000)
    total = sum(s.instructions for s in profiler.stats.values())
    assert total == device.cpu.retired


def test_hot_function_ranked_first():
    program = build_two_function_program(hot_iters=30)
    device, profiler = make_profiled_device(program)
    device.run(3000)
    hotspots = profiler.hotspots(top=3)
    assert hotspots[0].name == "hot"
    assert hotspots[0].instructions > hotspots[-1].instructions


def test_entries_counted_per_call():
    program = build_two_function_program()
    device, profiler = make_profiled_device(program)
    device.run(2000)
    # hot is called before cold each iteration; the run may cut off between
    assert abs(profiler.stats["hot"].entries
               - profiler.stats["cold"].entries) <= 1
    assert profiler.stats["hot"].entries > 5


def test_flat_profile_renders():
    program = build_two_function_program()
    device, profiler = make_profiled_device(program)
    device.run(500)
    report = profiler.flat_profile()
    assert "hot" in report and "main" in report and "%" in report


def test_isr_attribution():
    builder = ProgramBuilder(code_base=amap.PSPR_BASE)
    builder.function("main").halt()
    isr = builder.function("isr", base=amap.PSPR_BASE + 0x800)
    isr.alu(5)
    isr.rfe()
    program = builder.assemble()
    device, profiler = make_profiled_device(program)
    srn = device.soc.icu.add_srn("t", 5)
    device.cpu.set_vector(srn.id, "isr")
    from repro.soc.peripherals.basic import PeriodicTimer
    device.soc.add_peripheral(PeriodicTimer(
        "t", device.soc.hub, device.soc.icu, srn.id, 100))
    device.run(1000)
    assert profiler.stats["isr"].entries >= 8
    assert profiler.stats["isr"].instructions >= 8 * 6
