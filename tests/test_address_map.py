"""Address map: region classification and calibration overlay."""

import pytest

from repro.soc.config import tc1797_config
from repro.soc.memory import map as amap


@pytest.fixture
def address_map():
    return amap.AddressMap.for_config(tc1797_config())


def test_classify_every_region(address_map):
    assert address_map.classify(amap.PFLASH_BASE) == amap.PFLASH_CACHED
    assert address_map.classify(amap.PFLASH_UNCACHED_BASE + 4) == amap.PFLASH_UNCACHED
    assert address_map.classify(amap.DFLASH_BASE) == amap.DFLASH
    assert address_map.classify(amap.PSPR_BASE + 0x10) == amap.PSPR
    assert address_map.classify(amap.DSPR_BASE + 0x10) == amap.DSPR
    assert address_map.classify(amap.LMU_BASE) == amap.LMU
    assert address_map.classify(amap.PERIPH_BASE + 0x100) == amap.PERIPH
    assert address_map.classify(amap.EMEM_BASE) == amap.EMEM


def test_classify_end_of_region_exclusive(address_map):
    pflash = address_map.region("pflash")
    assert address_map.classify(pflash.end - 1) == amap.PFLASH_CACHED
    with pytest.raises(ValueError):
        address_map.classify(0x9FFF_FFFF + 1 + 0x0FFF_FFFF)  # far past regions


def test_unmapped_address_raises(address_map):
    with pytest.raises(ValueError):
        address_map.classify(0x0000_1000)


def test_region_lookup_by_name(address_map):
    region = address_map.region("dspr")
    assert region.base == amap.DSPR_BASE
    with pytest.raises(KeyError):
        address_map.region("nope")


def test_overlay_redirects_flash_range(address_map):
    start = amap.PFLASH_BASE + 0x1000
    address_map.add_overlay(start, 0x100)
    assert address_map.classify(start) == amap.OVERLAY
    assert address_map.classify(start + 0xFF) == amap.OVERLAY
    assert address_map.classify(start + 0x100) == amap.PFLASH_CACHED
    assert address_map.classify(start - 4) == amap.PFLASH_CACHED


def test_overlay_outside_flash_rejected(address_map):
    with pytest.raises(ValueError):
        address_map.add_overlay(amap.DSPR_BASE, 0x100)


def test_clear_overlays(address_map):
    start = amap.PFLASH_BASE + 0x2000
    address_map.add_overlay(start, 0x100)
    address_map.clear_overlays()
    assert address_map.classify(start) == amap.PFLASH_CACHED
    assert address_map.overlay_ranges == ()


def test_tc1767_map_smaller_flash():
    from repro.soc.config import tc1767_config
    smaller = amap.AddressMap.for_config(tc1767_config())
    with pytest.raises(ValueError):
        smaller.classify(amap.PFLASH_BASE + 3 * 1024 * 1024)
