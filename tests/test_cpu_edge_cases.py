"""CPU edge cases: interrupt/stall interactions, issue-group boundaries."""

import pytest

from repro.soc.config import tc1797_config
from repro.soc.cpu import isa
from repro.soc.device import Soc
from repro.soc.kernel import signals
from repro.soc.memory import map as amap
from repro.workloads.program import ProgramBuilder


def make_soc(seed=60, config=None):
    return Soc(config if config is not None else tc1797_config(), seed=seed)


def test_interrupt_not_taken_mid_stall():
    """A pending request waits until the current stall drains."""
    soc = make_soc()
    builder = ProgramBuilder(code_base=amap.PSPR_BASE)
    main = builder.function("main")
    # a long flash load then halt
    main.load(isa.FixedAddr(amap.PFLASH_BASE + 0x10_0000))
    main.halt()
    isr = builder.function("isr")
    isr.alu(1)
    isr.rfe()
    soc.load_program(builder.assemble())
    srn = soc.icu.add_srn("x", 5)
    soc.cpu.set_vector(srn.id, "isr")
    soc._ensure_order()
    soc.step = soc.run  # alias for clarity
    soc.run(1)                    # load issued, CPU stalls on flash
    assert soc.cpu.stall_until > soc.cycle
    soc.icu.raise_request(srn.id)
    stall_end = soc.cpu.stall_until
    soc.run(1)
    assert soc.hub.total(signals.TC_IRQ_ENTRY) == 0   # still stalled
    soc.run(stall_end + 5)
    assert soc.hub.total(signals.TC_IRQ_ENTRY) == 1


def test_rfe_returns_to_halt_state():
    soc = make_soc()
    builder = ProgramBuilder(code_base=amap.PSPR_BASE)
    builder.function("main").halt()
    isr = builder.function("isr")
    isr.alu(2)
    isr.rfe()
    soc.load_program(builder.assemble())
    srn = soc.icu.add_srn("x", 5)
    soc.cpu.set_vector(srn.id, "isr")
    soc._ensure_order()
    soc.run(5)
    assert soc.cpu.halted
    soc.icu.raise_request(srn.id)
    soc.run(30)
    assert soc.cpu.halted            # back asleep after the ISR
    assert soc.cpu.retired == 3


def test_not_taken_branch_does_not_end_group():
    """A not-taken branch lets later instructions issue the same cycle."""
    builder = ProgramBuilder(code_base=amap.PSPR_BASE)
    main = builder.function("main")
    top = main.label("top")
    main.branch(isa.TakenProbability(0.0), top)   # never taken
    main.alu(1)
    main.load(isa.FixedAddr(amap.DSPR_BASE + 4))
    main.jump(top)
    soc = make_soc()
    soc.load_program(builder.assemble())
    soc.run(600)
    # br+alu+ld can all retire in one cycle; jump the next; 2 cycles+penalty
    per_iter = 2 + soc.config.cpu.branch_penalty
    assert soc.cpu.retired >= (600 // per_iter - 2) * 4


def test_two_control_ops_cannot_share_a_cycle():
    builder = ProgramBuilder(code_base=amap.PSPR_BASE)
    main = builder.function("main")
    top = main.label("top")
    main.branch(isa.TakenProbability(0.0), top)
    main.branch(isa.TakenProbability(0.0), top)
    main.jump(top)
    soc = make_soc()
    soc.load_program(builder.assemble())
    soc.run(100)
    # 3 control ops need at least 3 issue cycles per iteration
    iters = soc.hub.total(signals.TC_BRANCH_TAKEN)
    assert soc.cpu.retired <= 100  # never more than 1 ctl op per cycle


def test_loop_count_one_falls_through_immediately():
    builder = ProgramBuilder(code_base=amap.PSPR_BASE)
    main = builder.function("main")
    main.loop(1, lambda f: f.alu(1))
    main.halt()
    soc = make_soc()
    soc.load_program(builder.assemble())
    soc.run(20)
    assert soc.cpu.halted
    assert soc.cpu.retired == 2      # one alu + the loop-close


def test_nested_calls_unwind_in_order():
    builder = ProgramBuilder(code_base=amap.PSPR_BASE)
    main = builder.function("main")
    main.call("a")
    main.halt()
    a = builder.function("a")
    a.alu(1)
    a.call("b")
    a.alu(1)
    a.ret()
    b = builder.function("b")
    b.alu(1)
    b.ret()
    soc = make_soc()
    soc.load_program(builder.assemble())
    soc.run(100)
    assert soc.cpu.halted
    assert soc.cpu.retired == 7      # call,a:alu,call,b:alu,ret,a:alu,ret
    assert soc.cpu._call_stack == []


def test_isr_with_loop_and_call():
    builder = ProgramBuilder(code_base=amap.PSPR_BASE)
    builder.function("main").halt()
    isr = builder.function("isr")
    isr.loop(4, lambda f: f.alu(1))
    isr.call("helper")
    isr.rfe()
    helper = builder.function("helper")
    helper.alu(2)
    helper.ret()
    soc = make_soc()
    soc.load_program(builder.assemble())
    srn = soc.icu.add_srn("x", 5)
    soc.cpu.set_vector(srn.id, "isr")
    soc._ensure_order()
    soc.icu.raise_request(srn.id)
    soc.run(100)
    assert soc.cpu.halted
    assert soc.cpu.current_priority == 0


def test_issue_width_config_respected():
    cfg = tc1797_config()
    cfg.cpu.issue_width = 1
    builder = ProgramBuilder(code_base=amap.PSPR_BASE)
    main = builder.function("main")
    top = main.label("top")
    for _ in range(8):
        main.alu(1)
        main.load(isa.FixedAddr(amap.DSPR_BASE + 4))
    main.jump(top)
    soc = make_soc(config=cfg)
    soc.load_program(builder.assemble())
    soc.run(500)
    assert soc.cpu.retired <= 500    # no dual issue at width 1


def test_uncached_code_execution():
    """Code in the uncached segment always pays the flash path."""
    builder = ProgramBuilder(code_base=amap.PFLASH_UNCACHED_BASE + 0x1000)
    main = builder.function("main")
    top = main.label("top")
    main.alu(6)
    main.jump(top)
    soc = make_soc()
    soc.load_program(builder.assemble())
    soc.run(2000)
    assert soc.hub.total(signals.ICACHE_ACCESS) == 0
    assert soc.hub.total(signals.TC_STALL_FETCH) > 0
    assert soc.cpu.retired > 0
