"""OSEK-style tick-driven workload: dispatch rates and composition."""

import pytest

from repro.core.profiling import FunctionProfiler
from repro.mcds.trace import TraceFanout
from repro.soc.config import tc1797_config
from repro.soc.kernel import signals
from repro.workloads.rtos import RtosScenario, TaskSpec, build_rtos_program


def make_profiled_device(params=None, seed=52):
    device = RtosScenario().build(tc1797_config(),
                                  params or {"tick_us": 50}, seed=seed)
    profiler = FunctionProfiler(device.cpu.program)
    if device.cpu.trace is None:
        device.cpu.trace = TraceFanout()
    device.cpu.trace.add(profiler)
    return device, profiler


def test_rtos_runs_and_ticks():
    device, _ = make_profiled_device()
    device.run(300_000)
    # 50 µs tick at 180 MHz = 9000 cycles -> ~33 ticks
    ticks = device.oracle()[signals.TIMER_EVENT]
    assert 28 <= ticks <= 35
    assert device.cpu.retired > 50_000


def test_task_activation_ratios():
    device, profiler = make_profiled_device()
    device.run(400_000)
    entries = {name: stats.entries
               for name, stats in profiler.stats.items()}
    # rate-monotonic dividers 1 : 5 : 20
    assert entries["task_1ms"] > 0
    assert entries["task_1ms"] == pytest.approx(
        5 * entries["task_5ms"], abs=5)
    assert entries["task_5ms"] >= entries["task_20ms"]


def test_idle_hook_absorbs_remaining_time():
    device, profiler = make_profiled_device()
    device.run(200_000)
    assert profiler.stats["main"].instructions > 0


def test_deterministic():
    def run():
        device = RtosScenario().build(tc1797_config(), {"tick_us": 50},
                                      seed=52)
        device.run(100_000)
        return device.cpu.retired, device.oracle()
    assert run() == run()


def test_custom_task_set():
    flags = []

    def tiny_task(f):
        flags.append(True)
        f.alu(3)

    scenario = RtosScenario(tasks=[TaskSpec("only_task", 2, tiny_task)])
    device = scenario.build(tc1797_config(), {"tick_us": 50}, seed=52)
    assert flags            # body generator was invoked
    device.run(120_000)
    assert device.cpu.retired > 0


def test_program_contains_all_tasks():
    program = build_rtos_program({"tick_us": 50, "isr_in_pspr": False,
                                  "idle_blocks": 2})
    for name in ("os_tick", "task_1ms", "task_5ms", "task_20ms",
                 "task_100ms", "can_isr"):
        assert name in program.symbols


def test_isr_in_pspr_places_tick_handler():
    from repro.soc.memory import map as amap
    program = build_rtos_program({"tick_us": 50, "isr_in_pspr": True,
                                  "idle_blocks": 2})
    assert program.symbol("os_tick") == amap.PSPR_BASE
