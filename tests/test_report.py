"""Consolidated profiling report rendering."""

import pytest

from repro.analysis import profiling_report
from repro.core.profiling import (FunctionProfiler, ProfilingSession, spec)
from repro.mcds.trace import TraceFanout
from repro.soc.config import tc1797_config
from repro.workloads.engine import EngineControlScenario


@pytest.fixture(scope="module")
def report_text():
    device = EngineControlScenario().build(
        tc1797_config(), {"anomaly": True, "anomaly_period": 40_000},
        seed=47)
    session = ProfilingSession(device,
                               spec.engine_parameter_set(ipc_resolution=512))
    profiler = FunctionProfiler(device.cpu.program)
    if device.cpu.trace is None:
        device.cpu.trace = TraceFanout()
    device.cpu.trace.add(profiler)
    result = session.run(200_000)
    return profiling_report(device, result, profiler)


def test_report_header(report_text):
    assert "tc1797ED @ 180 MHz" in report_text
    assert "200000 cycles" in report_text


def test_report_has_all_sections(report_text):
    for marker in ("parallel parameter measurement", "tc.ipc",
                   "poor-IPC windows", "function-level profile",
                   "CPI stack", "trace accounting"):
        assert marker in report_text, marker


def test_report_names_suspects(report_text):
    assert "σ" in report_text        # cause scores rendered


def test_report_without_profiler():
    device = EngineControlScenario().build(tc1797_config(), {}, seed=47)
    session = ProfilingSession(device, [spec.ipc()])
    result = session.run(30_000)
    text = profiling_report(device, result)
    assert "function-level profile" not in text
    assert "CPI stack" in text
