"""Soc assembly: construction rules, inventory, cross-run consistency."""

import pytest

from repro.analysis import TraceDecoder
from repro.core.profiling import FunctionProfiler
from repro.ed.device import EdConfig, EmulationDevice
from repro.mcds.trace import TraceFanout
from repro.soc.config import tc1767_config, tc1797_config
from repro.soc.device import Soc
from repro.soc.peripherals.basic import PeriodicTimer
from repro.workloads.program import ProgramBuilder
from repro.soc.memory import map as amap

from tests.helpers import make_loop_program


def test_no_peripherals_after_first_run():
    soc = Soc(tc1797_config(), seed=61)
    soc.load_program(make_loop_program())
    soc.run(10)
    srn = soc.icu.add_srn("late", 5)
    with pytest.raises(RuntimeError):
        soc.add_peripheral(PeriodicTimer("t", soc.hub, soc.icu, srn.id, 10))
    with pytest.raises(RuntimeError):
        soc.add_observer(PeriodicTimer("t", soc.hub, soc.icu, srn.id, 10))


def test_block_inventory_reflects_config():
    cfg = tc1797_config()
    cfg.dcache.enabled = True
    soc = Soc(cfg, seed=61)
    inventory = soc.block_inventory()
    assert "dcache" in inventory
    cfg2 = tc1797_config()
    cfg2.icache.enabled = False
    soc2 = Soc(cfg2, seed=61)
    assert "icache" not in soc2.block_inventory()


def test_tc1767_device_runs():
    device = EmulationDevice(EdConfig(soc=tc1767_config()), seed=61)
    device.load_program(make_loop_program(alu_per_iter=4))
    device.run(5000)
    assert device.cpu.retired > 0
    # 133 MHz -> fewer wait states than the 180 MHz part
    assert device.soc.memory.flash.wait_states == 3


def test_oracle_ipc_consistency():
    soc = Soc(tc1797_config(), seed=61)
    soc.load_program(make_loop_program(alu_per_iter=4))
    soc.run(2000)
    assert soc.ipc() == pytest.approx(
        soc.hub.total("tc.instr_executed") / 2000)


def test_decoder_agrees_with_profiler():
    """Trace decoding and live profiling attribute the same call counts."""
    builder = ProgramBuilder(code_base=amap.PSPR_BASE)
    main = builder.function("main")
    top = main.label("top")
    main.call("work")
    main.alu(3)
    main.jump(top)
    work = builder.function("work", base=amap.PSPR_BASE + 0x400)
    work.alu(2)
    work.ret()
    program = builder.assemble()

    device = EmulationDevice(EdConfig(soc=tc1797_config()), seed=61)
    device.load_program(program)
    device.mcds.add_program_trace(sync_period=10_000)
    profiler = FunctionProfiler(program)
    device.cpu.trace.add(profiler)
    device.run(3000)

    decoded = TraceDecoder(program).decode(device.emem.contents())
    assert decoded.function_entries.get("work") == \
        profiler.stats["work"].entries


def test_reset_is_repeatable():
    soc = Soc(tc1797_config(), seed=61)
    soc.load_program(make_loop_program(alu_per_iter=4))
    soc.run(3000)
    first = soc.oracle()
    soc.reset()
    soc.run(3000)
    assert soc.oracle() == first


def test_reset_restores_rng_streams():
    """Components keep references to their RNG streams; reset must rewind
    them, or stochastic workloads diverge between runs."""
    from repro.soc.cpu import isa

    def build():
        soc = Soc(tc1797_config(), seed=61)
        soc.load_program(make_loop_program(
            alu_per_iter=2,
            load_gen=isa.TableAddr(amap.PFLASH_BASE + 0x10_0000, 4, 1024,
                                   locality=0.5)))
        return soc

    soc = build()
    soc.run(3000)
    first = soc.oracle()
    soc.reset()
    # the CPU still holds the same Random object — reset must rewind it
    soc.run(3000)
    assert soc.oracle() == first
