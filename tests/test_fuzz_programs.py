"""Property-based fuzzing: random programs must never break the simulator.

A hypothesis strategy assembles arbitrary (but well-formed) applications —
random instruction mixes, nested loops, calls, branches, memory traffic
across every region — and checks global invariants: the run completes, the
accounting balances, observation stays non-intrusive, and execution is
deterministic in the seed.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ed.device import EdConfig, EmulationDevice
from repro.soc.config import tc1797_config
from repro.soc.cpu import isa
from repro.soc.device import Soc
from repro.soc.kernel import signals
from repro.soc.memory import map as amap
from repro.workloads.program import ProgramBuilder

REGION_BASES = (
    amap.DSPR_BASE + 0x100,
    amap.LMU_BASE + 0x100,
    amap.PFLASH_BASE + 0x10_0000,
    amap.PERIPH_BASE + 0x100,
)


@st.composite
def address_gen(draw):
    base = draw(st.sampled_from(REGION_BASES))
    kind = draw(st.integers(0, 2))
    if kind == 0:
        return isa.FixedAddr(base + draw(st.integers(0, 63)) * 4)
    if kind == 1:
        return isa.StrideAddr(base, draw(st.sampled_from([4, 8, 32])),
                              draw(st.integers(1, 64)))
    return isa.TableAddr(base, 4, draw(st.integers(1, 512)),
                         locality=draw(st.floats(0.0, 1.0)))


@st.composite
def body_ops(draw, depth=0):
    ops = []
    for _ in range(draw(st.integers(1, 6))):
        choice = draw(st.integers(0, 4 if depth < 2 else 3))
        if choice == 0:
            ops.append(("alu", draw(st.integers(1, 12))))
        elif choice == 1:
            ops.append(("load", draw(address_gen())))
        elif choice == 2:
            ops.append(("store", draw(st.sampled_from(
                [isa.FixedAddr(amap.DSPR_BASE + 0x80),
                 isa.FixedAddr(amap.LMU_BASE + 0x80)]))))
        elif choice == 3:
            ops.append(("branch", draw(st.floats(0.0, 0.9))))
        else:
            ops.append(("loop", draw(st.integers(1, 5)),
                        draw(body_ops(depth=depth + 1))))
    return ops


def emit_ops(function, ops, label_seq):
    for op in ops:
        if op[0] == "alu":
            function.alu(op[1])
        elif op[0] == "load":
            function.load(op[1])
        elif op[0] == "store":
            function.store(op[1])
        elif op[0] == "branch":
            name = f"f{next(label_seq)}"
            function.branch(isa.TakenProbability(op[1]), name)
            function.alu(1)
            function.label(name)
        elif op[0] == "loop":
            function.loop(op[1],
                          lambda f, body=op[2]: emit_ops(f, body, label_seq))


def build_program(ops, helper_ops):
    import itertools
    label_seq = itertools.count()
    builder = ProgramBuilder()
    main = builder.function("main")
    top = main.label("top")
    emit_ops(main, ops, label_seq)
    main.call("helper")
    main.jump(top)
    helper = builder.function("helper")
    emit_ops(helper, helper_ops, label_seq)
    helper.ret()
    return builder.assemble()


@settings(max_examples=25, deadline=None)
@given(ops=body_ops(), helper_ops=body_ops(), seed=st.integers(0, 99))
def test_random_program_runs_and_balances(ops, helper_ops, seed):
    program = build_program(ops, helper_ops)
    soc = Soc(tc1797_config(), seed=seed)
    soc.load_program(program)
    soc.run(4000)
    counts = soc.oracle()
    # forward progress (even all-flash-random programs retire something)
    assert soc.cpu.retired > 0
    assert counts[signals.TC_INSTR] == soc.cpu.retired
    # cycle accounting never exceeds physical bounds
    assert soc.cpu.retired <= 3 * 4000
    # stall accounting is consistent: stalls never exceed elapsed cycles
    stalls = (counts[signals.TC_STALL_FETCH] + counts[signals.TC_STALL_LOAD]
              + counts[signals.TC_STALL_STORE])
    assert stalls <= 4000
    # cache accounting balances
    assert (counts[signals.ICACHE_HIT] + counts[signals.ICACHE_MISS]
            == counts[signals.ICACHE_ACCESS])


@settings(max_examples=10, deadline=None)
@given(ops=body_ops(), helper_ops=body_ops(), seed=st.integers(0, 99))
def test_random_program_deterministic(ops, helper_ops, seed):
    program_a = build_program(ops, helper_ops)
    program_b = build_program(ops, helper_ops)

    def run(program):
        soc = Soc(tc1797_config(), seed=seed)
        soc.load_program(program)
        soc.run(2500)
        return soc.cpu.retired, soc.cpu.pc, soc.oracle()

    # note: address generators hold per-instance state, so each run gets a
    # freshly built program
    assert run(program_a) == run(program_b)


@settings(max_examples=10, deadline=None)
@given(ops=body_ops(), helper_ops=body_ops(), seed=st.integers(0, 99))
def test_random_program_observation_nonintrusive(ops, helper_ops, seed):
    def run(observe):
        program = build_program(ops, helper_ops)
        device = EmulationDevice(EdConfig(soc=tc1797_config()), seed=seed)
        device.load_program(program)
        if observe:
            device.mcds.add_rate_counter("ipc", ["tc.instr_executed"], 64,
                                         basis="cycles")
            device.mcds.add_program_trace(cycle_accurate=True)
        device.run(2500)
        return device.cpu.retired, device.cpu.pc, device.oracle()

    assert run(False) == run(True)
