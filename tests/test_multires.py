"""Multi-resolution coupled counters (paper Section 5, experiment E3)."""

import pytest

from repro.core.profiling import MultiResolutionRate
from repro.ed.device import EdConfig, EmulationDevice
from repro.mcds.counters import CYCLES
from repro.soc.config import tc1797_config
from repro.workloads.engine import EngineControlScenario

from tests.helpers import make_loop_program


def test_high_res_validation():
    device = EmulationDevice(EdConfig(soc=tc1797_config()), seed=2)
    device.load_program(make_loop_program())
    with pytest.raises(ValueError):
        MultiResolutionRate(device, "ipc", ["tc.instr_executed"],
                            low_resolution=64, high_resolution=256,
                            threshold_rate=1.0)


def test_high_counter_stays_off_when_healthy():
    device = EmulationDevice(EdConfig(soc=tc1797_config()), seed=2)
    # pure scratchpad loop: IPC stays high, threshold 0.2 never crossed
    from repro.workloads.program import ProgramBuilder
    from repro.soc.memory import map as amap
    builder = ProgramBuilder(code_base=amap.PSPR_BASE)
    main = builder.function("main")
    top = main.label("top")
    main.alu(8)
    main.jump(top)
    device.load_program(builder.assemble())
    mr = MultiResolutionRate(device, "ipc", ["tc.instr_executed"],
                             low_resolution=1024, high_resolution=64,
                             threshold_rate=0.2, basis=CYCLES)
    device.run(30_000)
    low, high = mr.decode()
    assert len(low) >= 25
    assert high == []
    assert mr.activations == 0


def test_high_counter_arms_during_anomaly():
    scenario = EngineControlScenario()
    device = scenario.build(tc1797_config(),
                            {"anomaly": True, "anomaly_period": 30_000},
                            seed=2)
    mr = MultiResolutionRate(device, "ipc", ["tc.instr_executed"],
                             low_resolution=1024, high_resolution=64,
                             threshold_rate=0.55, basis=CYCLES)
    device.run(200_000)
    low, high = mr.decode()
    assert mr.activations >= 2          # armed on anomaly bursts
    assert len(high) > 0
    # coupled capture is cheaper than an always-on high-res counter
    always_on_samples = 200_000 // 64
    assert len(high) < always_on_samples / 2
