"""Cache model: geometry, LRU behaviour, and a hypothesis model check."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.soc.config import CacheConfig
from repro.soc.memory.cache import Cache


def make_cache(size=256, line=32, ways=2):
    return Cache(CacheConfig(size_bytes=size, line_bytes=line, ways=ways))


def test_geometry():
    cache = make_cache(size=1024, line=32, ways=2)
    assert cache.sets == 16
    assert cache.ways == 2


def test_bad_line_size_rejected():
    with pytest.raises(ValueError):
        Cache(CacheConfig(size_bytes=256, line_bytes=24, ways=2))


def test_miss_then_hit_after_fill():
    cache = make_cache()
    assert not cache.lookup(0x100)
    cache.fill(0x100)
    assert cache.lookup(0x104)   # same line
    assert cache.hits == 1 and cache.misses == 1


def test_lookup_does_not_allocate():
    cache = make_cache()
    cache.lookup(0x100)
    assert not cache.contains(0x100)


def test_lru_evicts_least_recent():
    # one-set cache: size = line * ways
    cache = make_cache(size=64, line=32, ways=2)
    cache.fill(0x000)
    cache.fill(0x400)       # both map to set 0... need same set
    # with 1 set, every line maps to set 0
    cache.lookup(0x000)     # refresh 0x000
    victim = cache.fill(0x800)
    assert victim == 0x400 >> 5


def test_fill_same_line_is_noop():
    cache = make_cache()
    cache.fill(0x100)
    assert cache.fill(0x10C) is None


def test_invalidate_all():
    cache = make_cache()
    cache.fill(0x100)
    cache.invalidate_all()
    assert not cache.contains(0x100)


def test_reset_clears_counters():
    cache = make_cache()
    cache.lookup(0x100)
    cache.reset()
    assert cache.accesses == 0


class _RefModel:
    """Dict-of-lists reference LRU cache."""

    def __init__(self, sets, ways, line_shift):
        self.sets = sets
        self.ways = ways
        self.shift = line_shift
        self.state = {}

    def access(self, addr):
        line = addr >> self.shift
        ways = self.state.setdefault(line % self.sets, [])
        hit = line in ways
        if hit:
            ways.remove(line)
        elif len(ways) >= self.ways:
            ways.pop(0)
        ways.append(line)
        return hit


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=0x7FF), min_size=1,
                max_size=200))
def test_cache_matches_reference_lru(addresses):
    cache = make_cache(size=256, line=32, ways=2)   # 4 sets
    ref = _RefModel(sets=4, ways=2, line_shift=5)
    for addr in addresses:
        hit = cache.lookup(addr)
        if not hit:
            cache.fill(addr)
        assert hit == ref.access(addr)
