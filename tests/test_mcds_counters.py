"""MCDS counter structures: on-chip rate generation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mcds.counters import CYCLES, RateCounterStructure, RawCounter
from repro.soc.kernel.hub import EventHub


def make_structure(resolution=10, basis="instr", events=("ev",),
                   enabled=True):
    hub = EventHub()
    hub.register("ev")
    hub.register("instr")
    samples = []
    structure = RateCounterStructure("s", hub, events, resolution, basis,
                                     enabled)
    structure.sink = lambda cycle, s, value: samples.append((cycle, value))
    return hub, structure, samples


def test_sample_emitted_at_resolution():
    hub, structure, samples = make_structure(resolution=10)
    ev, instr = hub.signal_id("ev"), hub.signal_id("instr")
    for i in range(25):
        hub.cycle = i
        if i % 5 == 0:
            hub.emit(ev)
        hub.emit(instr)
    # two full windows of 10 instructions, 2 events each
    assert [v for _, v in samples] == [2, 2]
    assert structure.basis_count == 5   # residual of the third window


def test_basis_overshoot_closes_all_crossed_windows():
    hub, structure, samples = make_structure(resolution=10)
    instr = hub.signal_id("instr")
    hub.emit(instr, 25)   # superscalar burst crossing two windows
    assert len(samples) == 2
    assert structure.basis_count == 5


def test_cycles_basis_driven_by_on_cycle():
    hub = EventHub()
    hub.register("ev")
    samples = []
    structure = RateCounterStructure("ipc", hub, ("ev",), 4, CYCLES)
    structure.sink = lambda cycle, s, value: samples.append(value)
    ev = hub.signal_id("ev")
    for cycle in range(12):
        hub.cycle = cycle
        hub.emit(ev, 2)
        structure.on_cycle(cycle)
    assert samples == [8, 8, 8]


def test_disabled_structure_counts_nothing():
    hub, structure, samples = make_structure(enabled=False)
    hub.emit(hub.signal_id("ev"))
    hub.emit(hub.signal_id("instr"), 50)
    assert samples == []
    assert structure.event_count == 0


def test_disable_clears_partial_window():
    hub, structure, samples = make_structure(resolution=10)
    hub.emit(hub.signal_id("ev"), 3)
    hub.emit(hub.signal_id("instr"), 5)
    structure.disable()
    structure.enable()
    hub.emit(hub.signal_id("instr"), 10)
    assert [v for _, v in samples] == [0]   # fresh window after re-arm


def test_last_sample_exposed_for_triggers():
    hub, structure, samples = make_structure(resolution=10)
    assert structure.last_sample is None
    hub.emit(hub.signal_id("ev"), 7)
    hub.emit(hub.signal_id("instr"), 10)
    assert structure.last_sample == 7


def test_multiple_event_sources_summed():
    hub = EventHub()
    for name in ("a", "b", "instr"):
        hub.register(name)
    samples = []
    structure = RateCounterStructure("s", hub, ("a", "b"), 10, "instr")
    structure.sink = lambda c, s, v: samples.append(v)
    hub.emit(hub.signal_id("a"), 2)
    hub.emit(hub.signal_id("b"), 3)
    hub.emit(hub.signal_id("instr"), 10)
    assert samples == [5]


def test_detach_unsubscribes():
    hub, structure, samples = make_structure()
    structure.detach()
    hub.emit(hub.signal_id("ev"))
    hub.emit(hub.signal_id("instr"), 100)
    assert samples == []


def test_resolution_validation():
    hub = EventHub()
    with pytest.raises(ValueError):
        RateCounterStructure("s", hub, ("ev",), 0)


def test_raw_counter_accumulates():
    hub = EventHub()
    hub.register("ev")
    counter = RawCounter("c", hub, ("ev",))
    hub.emit(hub.signal_id("ev"), 4)
    hub.emit(hub.signal_id("ev"))
    assert counter.value == 5
    counter.reset()
    assert counter.value == 0


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 4)),
                min_size=1, max_size=200),
       st.integers(1, 50))
def test_conservation_of_events(steps, resolution):
    """Sum of emitted samples + residual == total events (while enabled)."""
    hub = EventHub()
    hub.register("ev")
    hub.register("instr")
    samples = []
    structure = RateCounterStructure("s", hub, ("ev",), resolution, "instr")
    structure.sink = lambda c, s, v: samples.append(v)
    total_events = 0
    for ev_count, instr_count in steps:
        if ev_count:
            hub.emit(hub.signal_id("ev"), ev_count)
            total_events += ev_count
        if instr_count:
            hub.emit(hub.signal_id("instr"), instr_count)
    assert sum(samples) + structure.event_count == total_events
