"""repro.traces: columnar store, streaming summary, query, diff, export.

The PR's contract in unit-test form:

* the ``.rtrace`` segment format round-trips every event and rejects
  structural damage (truncation, bit flips, missing tail) loudly;
* a windowed/name/job query reads only the footer plus matching column
  blocks — never the whole file — and reports its exact byte cost;
* the summary sidecar is computed incrementally at ingest and a diff of
  two runs of the same spec is exactly empty, while a perturbed config
  surfaces exactly the perturbed customers;
* the tracer sink streams every event (including ones the bounded
  buffer drops) and campaign payloads are byte-identical with the trace
  store on or off;
* Chrome and Perfetto exports stay structurally valid — and timestamp-
  monotonic for Perfetto — across a mid-campaign device reset.
"""

import dataclasses
import json
import os
import struct
import zlib

import pytest

from repro import traces
from repro.errors import ConfigurationError, TraceStoreError
from repro.fleet import CampaignSpec, run_campaign
from repro.fleet.spec import canonical_json
from repro.obs import SpanTracer, telemetry
from repro.traces import format as tfmt
from repro.traces.export import (decode_message, decode_varint,
                                 encode_varint)
from repro.traces.summary import StreamingSummary

CYCLES = 6_000
SEED = 7


def fake_clock(step=0.001):
    state = {"now": 0.0}

    def clock():
        state["now"] += step
        return state["now"]

    return clock


def write_synthetic(path, spans=200, jobs=4, block_events=16):
    """A deterministic synthetic segment: spans every 10us, 4 customers."""
    with traces.TraceWriter(path, run_id="synthetic",
                            block_events=block_events) as writer:
        writer.set_process(0, "repro")
        writer.set_thread(0, 0, "main")
        for i in range(spans):
            writer.append({
                "name": "job.execute", "cat": "fleet", "ph": "X",
                "ts": i * 10.0, "dur": 4.0, "pid": 0, "tid": 0,
                "args": {"job": f"cust-{i % jobs}", "index": i}})
        writer.append({"name": "gap.recorded", "cat": "mcds", "ph": "i",
                       "s": "t", "ts": spans * 10.0, "pid": 0, "tid": 0,
                       "args": {"lost": 3, "job": "cust-0"}})
    return path


# -- format ------------------------------------------------------------------

def test_pack_unpack_block_round_trip():
    rows = [(float(i), 2.0, 1, 2, i % 3, 0, 0, 0, {"n": i})
            for i in range(10)]
    body, entry = tfmt.pack_block(rows)
    assert entry["count"] == 10
    assert entry["ts_min"] == 0.0 and entry["ts_max"] == 9.0
    assert entry["jobs"] == [1, 2]          # job id 0 is "no job"
    assert tfmt.unpack_block(body, entry) == rows


def test_unpack_block_rejects_bit_flip_and_truncation():
    rows = [(1.0, 2.0, 1, 1, 0, 0, 0, 0, None)]
    body, entry = tfmt.pack_block(rows)
    flipped = bytes([body[0] ^ 0xFF]) + body[1:]
    with pytest.raises(TraceStoreError, match="CRC"):
        tfmt.unpack_block(flipped, entry)
    with pytest.raises(TraceStoreError, match="truncated"):
        tfmt.unpack_block(body[:-1], entry)


def test_string_table_interns_and_guards():
    table = tfmt.StringTable()
    assert table.intern("") == 0
    a = table.intern("alpha")
    assert table.intern("alpha") == a
    assert table[a] == "alpha"
    with pytest.raises(TraceStoreError):
        table[99]
    with pytest.raises(TraceStoreError):
        tfmt.StringTable(["not-empty-first"])


def test_reader_rejects_unclosed_and_damaged_segments(tmp_path):
    # no tail: the writer never closed
    unclosed = tmp_path / "unclosed.rtrace"
    unclosed.write_bytes(tfmt.MAGIC + b"\x00" * 64)
    with pytest.raises(TraceStoreError, match="never closed"):
        traces.TraceReader(str(unclosed))
    # not a segment at all
    other = tmp_path / "other.bin"
    other.write_bytes(b"x" * 64)
    with pytest.raises(TraceStoreError, match="magic"):
        traces.TraceReader(str(other))
    # a real segment with a flipped footer byte
    seg = write_synthetic(str(tmp_path / "ok.rtrace"), spans=20)
    data = bytearray(open(seg, "rb").read())
    data[-(tfmt.TAIL_SIZE + 4)] ^= 0xFF
    damaged = tmp_path / "damaged.rtrace"
    damaged.write_bytes(bytes(data))
    with pytest.raises(TraceStoreError, match="CRC"):
        traces.TraceReader(str(damaged))


# -- writer / reader ---------------------------------------------------------

def test_writer_reader_round_trip(tmp_path):
    seg = write_synthetic(str(tmp_path / "a.rtrace"), spans=50,
                          block_events=16)
    with traces.TraceReader(seg) as reader:
        assert reader.run_id == "synthetic"
        assert reader.counts["events"] == 51
        assert reader.counts["spans"] == 50
        assert reader.counts["instants"] == 1
        assert len(reader.blocks) == 4      # ceil(51 / 16)
        assert reader.process_names[0] == "repro"
        assert reader.thread_names[(0, 0)] == "main"
        events = list(reader.events())
    assert len(events) == 51
    assert events[0] == {"name": "job.execute", "cat": "fleet", "ph": "X",
                         "ts": 0.0, "dur": 4.0, "pid": 0, "tid": 0,
                         "args": {"job": "cust-0", "index": 0}}
    assert events[-1]["name"] == "gap.recorded"
    assert events[-1]["s"] == "t"


def test_writer_skips_foreign_phases_and_streams_metadata(tmp_path):
    path = str(tmp_path / "b.rtrace")
    with traces.TraceWriter(path) as writer:
        writer.append({"name": "process_name", "ph": "M", "pid": 7,
                       "tid": 0, "args": {"name": "worker 7"}})
        writer.append({"name": "flow", "ph": "s", "ts": 1.0,
                       "pid": 0, "tid": 0})
        writer.append({"name": "x", "ph": "X", "ts": 1.0, "dur": 1.0,
                       "pid": 7, "tid": 0})
    with traces.TraceReader(path) as reader:
        assert reader.counts["skipped"] == 1
        assert reader.counts["events"] == 1
        assert reader.process_names[7] == "worker 7"
    # a closed writer refuses further appends
    with pytest.raises(TraceStoreError, match="closed"):
        writer.append({"name": "y", "ph": "X", "ts": 2.0,
                       "pid": 0, "tid": 0})


# -- query -------------------------------------------------------------------

def test_windowed_query_prunes_blocks_and_counts_bytes(tmp_path):
    seg = write_synthetic(str(tmp_path / "q.rtrace"), spans=2_000,
                          block_events=64)
    query = traces.TraceQuery(begin_us=5_000.0, end_us=5_500.0)
    result = traces.query_segment(seg, query)
    assert len(result.events) == 51         # ts 5000..5500 step 10
    assert all(5_000.0 <= e["ts"] <= 5_500.0 for e in result.events)
    assert result.blocks_scanned < result.blocks_total
    assert result.bytes_read < result.file_bytes
    assert result.bytes_fraction < 0.20


def test_query_by_name_job_phase_and_limit(tmp_path):
    seg = write_synthetic(str(tmp_path / "p.rtrace"), spans=80,
                          block_events=16)
    by_job = traces.query_segment(seg, traces.TraceQuery(
        jobs=("cust-1",)))
    assert len(by_job.events) == 20
    assert all((e["args"]["job"] == "cust-1") for e in by_job.events)

    instants = traces.query_segment(seg, traces.TraceQuery(phase="i"))
    assert [e["name"] for e in instants.events] == ["gap.recorded"]

    limited = traces.query_segment(seg, traces.TraceQuery(
        names=("job.execute",), limit=5))
    assert len(limited.events) == 5 and limited.truncated

    # an unknown-only predicate short-circuits: zero blocks read
    unknown = traces.query_segment(seg, traces.TraceQuery(
        names=("no.such.span",)))
    assert unknown.events == [] and unknown.blocks_scanned == 0


def test_query_validation():
    with pytest.raises(ConfigurationError, match="inverted"):
        traces.TraceQuery(begin_us=5.0, end_us=1.0)
    with pytest.raises(ConfigurationError, match="phase"):
        traces.TraceQuery(phase="B")
    with pytest.raises(ConfigurationError, match="limit"):
        traces.TraceQuery(limit=0)


# -- summary -----------------------------------------------------------------

def test_streaming_summary_aggregates():
    summary = StreamingSummary(top_n=3)
    for i in range(10):
        summary.observe("job.execute", "X", i * 10.0, float(i), "cust-0",
                        None)
    summary.observe("gap.recorded", "i", 200.0, 0.0, "cust-0",
                    {"lost": 5})
    summary.observe("job.profile", "i", 210.0, 0.0, "cust-0",
                    {"signal": "tc.ipc", "mean_rate": 0.8,
                     "samples": 12, "degraded": 0})
    summary.observe("job.stats", "i", 220.0, 0.0, "cust-0",
                    {"lost": 5, "gaps": 1, "degraded": 2,
                     "stall_events": 7})
    body = summary.to_dict()
    assert body["spans"] == 10 and body["instants"] == 3
    stat = body["by_name"]["job.execute"]
    assert stat["count"] == 10
    assert stat["dur_max_us"] == 9.0 and stat["dur_min_us"] == 0.0
    assert sum(stat["buckets"]) == 10
    assert body["totals"] == {"gaps": 1, "lost_messages": 10,
                              "degraded_samples": 2, "stall_events": 7}
    assert body["series"]["cust-0"]["tc.ipc"]["mean_rate"] == 0.8
    assert body["by_job"]["cust-0"]["stall_events"] == 7
    slowest = body["slowest"]
    assert [entry["dur_us"] for entry in slowest] == [9.0, 8.0, 7.0]


def test_sidecar_survives_crc_check_and_tamper_falls_back(tmp_path):
    seg = write_synthetic(str(tmp_path / "s.rtrace"), spans=30)
    sidecar = traces.sidecar_path(seg)
    assert os.path.exists(sidecar)
    body = traces.load_summary(sidecar)
    assert body["spans"] == 30
    # tamper: load_summary must reject, summary_for must rebuild
    doc = json.load(open(sidecar))
    doc["body"]["spans"] = 999
    json.dump(doc, open(sidecar, "w"))
    with pytest.raises(TraceStoreError, match="CRC"):
        traces.load_summary(sidecar)
    rebuilt = traces.summary_for(seg)
    assert rebuilt["spans"] == 30
    assert rebuilt["totals"]["lost_messages"] == 3


# -- diff --------------------------------------------------------------------

def test_diff_identical_runs_is_empty():
    summary = StreamingSummary()
    summary.observe("job.profile", "i", 0.0, 0.0, "a",
                    {"signal": "tc.ipc", "mean_rate": 0.8, "samples": 10,
                     "degraded": 0})
    diff = traces.diff_summaries(summary.to_dict(), summary.to_dict())
    assert diff.changes == [] and diff.compared_jobs == 1


def test_diff_direction_and_thresholds():
    def body(ipc, stalls):
        s = StreamingSummary()
        s.observe("job.profile", "i", 0.0, 0.0, "a",
                  {"signal": "tc.ipc", "mean_rate": ipc, "samples": 10,
                   "degraded": 0})
        s.observe("job.stats", "i", 1.0, 0.0, "a",
                  {"lost": 0, "gaps": 0, "degraded": 0,
                   "stall_events": stalls})
        return s.to_dict()

    diff = traces.diff_summaries(body(0.80, 5), body(0.60, 9))
    metrics = {e.metric: e for e in diff.changes}
    assert metrics["tc.ipc.mean_rate"].worse is True     # IPC down = worse
    assert metrics["stall_events"].worse is True         # stalls up = worse
    assert diff.regressions and not diff.improvements

    # below the relative threshold: silence
    quiet = traces.diff_summaries(body(0.800, 5), body(0.801, 5),
                                  rel_threshold=0.05)
    assert quiet.changes == []


# -- tracer sink + recording -------------------------------------------------

def test_sink_sees_events_the_buffer_drops(tmp_path):
    path = str(tmp_path / "sink.rtrace")
    tracer = SpanTracer(clock=fake_clock(), max_events=5)
    writer = traces.TraceWriter(path)
    tracer.attach_sink(writer)
    with pytest.raises(RuntimeError):
        tracer.attach_sink(writer)          # one sink at a time
    for i in range(50):
        tracer.instant("tick", args={"i": i})
    assert tracer.detach_sink() is writer
    writer.close()
    assert tracer.dropped_events == 45
    assert len(tracer.events) == 6          # 5 real + trace.buffer_full
    with traces.TraceReader(path) as reader:
        assert reader.counts["events"] == 50   # the sink missed nothing
    summary = traces.summary_for(path)
    # the overflow marker stays out of the sink stream by design
    assert summary["buffer_overflows"] == 0


def test_recording_seals_segment_even_on_error(tmp_path):
    path = str(tmp_path / "sealed.rtrace")
    with pytest.raises(RuntimeError, match="boom"):
        with telemetry(run_id="r1", clock=fake_clock()) as tel:
            with traces.recording(tel, path):
                tel.instant("before.crash")
                raise RuntimeError("boom")
    with traces.TraceReader(path) as reader:
        assert reader.run_id == "r1"
        assert reader.counts["events"] == 1
    assert tel.tracer._sink is None         # detached on the way out


def test_dropped_events_metric_wired(tmp_path):
    with telemetry(clock=fake_clock()) as tel:
        tel.tracer.max_events = 3
        for _ in range(10):
            tel.instant("x")
        assert tel.registry.get("repro_obs_spans_dropped_total").value() == 7


# -- chrome / perfetto export ------------------------------------------------

def test_varint_round_trip():
    for value in (0, 1, 127, 128, 300, 2 ** 35, 2 ** 63):
        data = encode_varint(value)
        decoded, offset = decode_varint(data, 0)
        assert decoded == value and offset == len(data)


def test_chrome_export_round_trips_through_ingest(tmp_path):
    seg = write_synthetic(str(tmp_path / "c.rtrace"), spans=40)
    chrome = str(tmp_path / "c.json")
    with traces.TraceReader(seg) as reader:
        traces.write_chrome(reader, chrome)
    body = json.load(open(chrome))
    events = body["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    assert {e["name"] for e in meta} == {"process_name", "thread_name"}
    assert len(events) == 41 + len(meta)
    # the exported file ingests back into an equivalent segment
    seg2 = str(tmp_path / "c2.rtrace")
    traces.ingest_chrome(chrome, seg2)
    with traces.TraceReader(seg) as ra, traces.TraceReader(seg2) as rb:
        assert list(ra.events()) == list(rb.events())
        assert rb.process_names[0] == "repro"


def test_perfetto_export_decodes_and_is_monotonic(tmp_path):
    seg = write_synthetic(str(tmp_path / "pf.rtrace"), spans=30)
    with traces.TraceReader(seg) as reader:
        blob = traces.to_perfetto(reader)
    packets = [value for number, _, value in decode_message(blob)
               if number == 1]
    descriptors = begins = ends = instants = 0
    timestamps = []
    for packet in packets:
        fields = dict((n, v) for n, _, v in decode_message(packet))
        if 60 in fields:
            descriptors += 1
            continue
        timestamps.append(fields[8])
        assert fields[10] == 1              # one trusted sequence
        event = dict((n, v) for n, _, v in decode_message(fields[11]))
        kind = event[9]
        if kind == 1:
            begins += 1
            assert event[23] == b"job.execute"
        elif kind == 2:
            ends += 1
        else:
            assert kind == 3
            instants += 1
    assert descriptors == 2                 # one process + one thread lane
    assert begins == ends == 30
    assert instants == 1
    assert timestamps == sorted(timestamps)


def test_exports_stay_valid_across_device_reset(tmp_path):
    """A mid-campaign reset rebases the trace epoch; exports must not
    come out unparseable or (for Perfetto) non-monotonic because later
    events carry earlier timestamps."""
    path = str(tmp_path / "reset.rtrace")
    with telemetry(run_id="reset", clock=fake_clock()) as tel:
        with traces.recording(tel, path):
            for _ in range(5):
                with tel.span("job.execute", job="before"):
                    pass
            tel.on_device_reset()           # what Soc.reset() invokes
            with tel.span("job.execute", job="after"):
                pass
    with traces.TraceReader(path) as reader:
        events = [e for e in reader.events() if e["name"] == "job.execute"]
        # the rebase really happened: the post-reset span restarted the
        # timeline below where the pre-reset spans had advanced it
        assert events[5]["ts"] < events[4]["ts"]
        chrome = json.loads(traces.to_chrome(reader))
        assert len(chrome["traceEvents"]) >= 2
        blob = traces.to_perfetto(reader)
    timestamps = []
    for number, _, packet in decode_message(blob):
        fields = dict((n, v) for n, _, v in decode_message(packet))
        if 8 in fields:
            timestamps.append(fields[8])
    assert timestamps == sorted(timestamps)
    # the tracer's own bounded-buffer export sorts as well
    in_memory = tel.tracer.trace_events()
    data = [e for e in in_memory if e["ph"] != "M"]
    assert [e["ts"] for e in data] == sorted(e["ts"] for e in data)


# -- campaign integration ----------------------------------------------------

def _payloads(report):
    return canonical_json([record["payload"]
                           for record in sorted(report.records,
                                                key=lambda r: r["job_id"])])


def test_campaign_payloads_identical_with_trace_store(tmp_path):
    spec = CampaignSpec(count=2, cycles=CYCLES, seed=SEED,
                        ipc_resolution=256)
    bare = run_campaign(spec, workers=0)
    path = str(tmp_path / "campaign.rtrace")
    with telemetry(run_id="stored") as tel:
        with traces.recording(tel, path):
            stored = run_campaign(spec, workers=0)
    assert _payloads(bare) == _payloads(stored)

    summary = traces.summary_for(path)
    # the orchestrator's deterministic instants landed per customer
    assert len(summary["series"]) == 2
    for signals in summary["series"].values():
        assert "tc.ipc" in signals
        assert signals["tc.ipc"]["samples"] > 0
    assert summary["by_name"]["job.execute"]["count"] == 2


def test_cross_run_diff_surfaces_exactly_the_perturbed_customer(tmp_path):
    spec = CampaignSpec(count=3, cycles=CYCLES, seed=SEED,
                        ipc_resolution=256)
    jobs = [job.to_dict() for job in spec.build_jobs()]
    perturbed = [dict(j) for j in jobs]
    perturbed[1]["cycles"] = CYCLES * 2
    target = perturbed[1]["name"]

    segments = {}
    for label, job_list in (("before", jobs), ("after", perturbed)):
        path = str(tmp_path / f"{label}.rtrace")
        with telemetry(run_id=label) as tel:
            with traces.recording(tel, path):
                run_campaign(CampaignSpec(jobs=job_list), workers=0)
        segments[label] = path

    diff = traces.diff_summaries(traces.summary_for(segments["before"]),
                                 traces.summary_for(segments["after"]))
    assert diff.compared_jobs == 3
    assert diff.changed_jobs == [target]
    assert all(entry.job == target for entry in diff.changes)
    # doubling the budget doubles the sample count for that customer
    samples = [e for e in diff.changes
               if e.metric == "tc.ipc.samples"]
    assert samples and samples[0].after == 2 * samples[0].before


def test_identical_runs_diff_empty_end_to_end(tmp_path):
    spec = CampaignSpec(count=2, cycles=CYCLES, seed=SEED,
                        ipc_resolution=256)
    paths = []
    for label in ("a", "b"):
        path = str(tmp_path / f"{label}.rtrace")
        with telemetry(run_id=label) as tel:
            with traces.recording(tel, path):
                run_campaign(spec, workers=0)
        paths.append(path)
    diff = traces.diff_summaries(traces.summary_for(paths[0]),
                                 traces.summary_for(paths[1]))
    assert diff.changes == []
    assert diff.added_jobs == [] and diff.removed_jobs == []


def test_trace_store_metrics_count_flushes(tmp_path):
    path = str(tmp_path / "metrics.rtrace")
    with telemetry(clock=fake_clock()) as tel:
        with traces.recording(tel, path, block_events=4):
            for _ in range(10):
                tel.instant("tick")
        assert tel.registry.get("repro_trace_store_events_total").value() >= 8
        assert tel.registry.get("repro_trace_store_blocks_total").value() >= 2
        assert tel.registry.get("repro_trace_store_bytes_total").value() > 0


# -- batch-backend instrumentation -------------------------------------------

def test_batch_backend_spans_and_metrics(tmp_path):
    pytest.importorskip("numpy")
    from repro.fleet.spec import CampaignJob
    from repro.fleet.worker import run_batch_shard

    jobs = [CampaignJob(name=f"c{i}", domain="engine", device="tc1797",
                        params={}, cycles=CYCLES, seed=SEED).to_dict()
            for i in range(3)]
    path = str(tmp_path / "batch.rtrace")
    with telemetry(run_id="batch") as tel:
        with traces.recording(tel, path):
            outcomes = run_batch_shard(jobs)
        reg = tel.registry
        assert all(o["status"] == "ok" for o in outcomes)
        assert reg.get("repro_batch_groups_total").value('ok') == 1
        assert reg.get("repro_batch_lanes_total").value() == 3
        assert reg.get("repro_batch_strides_total").value() >= 1
        assert reg.get("repro_batch_sweep_cycles_total").value() == 3 * CYCLES
    summary = traces.summary_for(path)
    assert summary["by_name"]["batch.stride"]["count"] >= 1
    assert summary["by_name"]["batch.reconstruct"]["count"] == 3
    assert summary["by_name"]["job.execute"]["count"] == 3
    # per-lane job spans carry the backend tag
    result = traces.query_segment(path, traces.TraceQuery(
        names=("job.execute",)))
    assert all(e["args"]["backend"] == "batch" for e in result.events)


def test_batch_fallback_counts_reason(tmp_path):
    pytest.importorskip("numpy")
    from repro.fleet.spec import CampaignJob
    from repro.fleet.worker import run_batch_shard

    jobs = [CampaignJob(name="flaky", domain="engine", device="tc1797",
                        params={}, cycles=CYCLES, seed=SEED,
                        fault="flaky:0").to_dict()]
    with telemetry() as tel:
        outcomes = run_batch_shard(jobs)
        assert outcomes[0]["status"] == "ok"   # scalar fallback ran it
        reg = tel.registry
        assert reg.get("repro_batch_fallbacks_total").value('unsupported') == 1
        assert reg.get("repro_batch_groups_total").value('fallback') == 1


# -- CLI ---------------------------------------------------------------------

def test_cli_traces_workflow(tmp_path, capsys):
    from repro.cli import main

    seg = write_synthetic(str(tmp_path / "cli.rtrace"), spans=60)
    assert main(["traces", "info", seg]) == 0
    out = capsys.readouterr().out
    assert "61 events" in out and "slowest spans:" in out

    assert main(["traces", "query", seg, "--begin", "100", "--end",
                 "200", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert len(payload["events"]) == 11
    assert payload["blocks_scanned"] <= payload["blocks_total"]

    chrome = str(tmp_path / "cli.json")
    perfetto = str(tmp_path / "cli.pftrace")
    assert main(["traces", "export", seg, "--chrome", chrome,
                 "--perfetto", perfetto]) == 0
    capsys.readouterr()
    assert json.load(open(chrome))["traceEvents"]
    assert os.path.getsize(perfetto) > 0

    seg2 = str(tmp_path / "cli2.rtrace")
    assert main(["traces", "ingest", chrome, "-o", seg2]) == 0
    capsys.readouterr()
    assert main(["traces", "diff", seg, seg2, "--strict"]) == 0
    out = capsys.readouterr().out
    assert "0 regressions" in out

    missing = str(tmp_path / "missing.rtrace")
    assert main(["traces", "info", missing]) == 1


def test_cli_campaign_trace_store_flag(tmp_path, capsys):
    from repro.cli import main

    seg = str(tmp_path / "flag.rtrace")
    status = main(["campaign", "--count", "2", "--cycles", str(CYCLES),
                   "--workers", "0", "--trace-store", seg])
    assert status == 0
    capsys.readouterr()
    with traces.TraceReader(seg) as reader:
        assert reader.counts["events"] > 0
    assert traces.summary_for(seg)["by_name"]["job.execute"]["count"] == 2
