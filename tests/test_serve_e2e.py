"""`repro serve` subprocess smoke: the CI service lane, as a test.

Boots the real CLI entry point on an ephemeral port, submits a campaign
over HTTP, follows the SSE stream to completion, and asserts the served
artifacts are byte-identical to an offline ``repro.fleet.run_campaign``
of the same spec.
"""

import json
import os
import re
import signal
import subprocess
import sys
import time
import urllib.request

import pytest

from repro.fleet import CampaignSpec, run_campaign
from repro.fleet.spec import canonical_json

SPEC = {"count": 2, "cycles": 8_000, "seed": 9}
REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture
def server(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    env["PYTHONUNBUFFERED"] = "1"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--root", str(tmp_path / "serve"),
         "--checkpoint-every", "4000"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, env=env,
        cwd=str(tmp_path), text=True)
    try:
        line = proc.stdout.readline()
        match = re.search(r"listening on (http://[\d.]+:\d+)", line)
        assert match, f"no listen line, got {line!r}"
        yield match.group(1)
    finally:
        proc.send_signal(signal.SIGINT)
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()


def get_json(url):
    with urllib.request.urlopen(url, timeout=30) as resp:
        return json.loads(resp.read())


def test_cli_serve_end_to_end(server, tmp_path):
    base = server
    health = get_json(base + "/healthz")
    assert health["status"] == "ok"

    req = urllib.request.Request(
        base + "/v1/campaigns", data=json.dumps(SPEC).encode(),
        headers={"X-Tenant": "ci"})
    with urllib.request.urlopen(req, timeout=30) as resp:
        sub = json.loads(resp.read())
    cid = sub["id"]
    assert sub["state"] == "queued" or sub["state"] == "running"

    # follow the SSE stream until the terminal frame
    events = []
    with urllib.request.urlopen(base + f"/v1/campaigns/{cid}/events",
                                timeout=120) as stream:
        current = None
        deadline = time.time() + 120
        while time.time() < deadline:
            raw = stream.readline()
            if not raw:
                break
            line = raw.decode().rstrip("\n")
            if line.startswith("event: "):
                current = line[7:]
            elif line.startswith("data: ") and current:
                events.append((current, line[6:]))
            elif line == "" and current == "stream.close":
                break
    names = [name for name, _ in events]
    assert names.count("job.result") == 2
    assert "campaign.completed" in names

    status = get_json(base + f"/v1/campaigns/{cid}")
    assert status["state"] == "completed"
    page = get_json(base + f"/v1/campaigns/{cid}/results")
    assert len(page["records"]) == 2

    with urllib.request.urlopen(base + f"/v1/campaigns/{cid}/aggregate",
                                timeout=30) as resp:
        served_aggregate = resp.read()

    # byte-identity against a direct offline run of the same spec
    offline = run_campaign(CampaignSpec(**SPEC), workers=0,
                           campaign_dir=str(tmp_path / "offline"))
    with open(offline.aggregate_path, "rb") as handle:
        assert served_aggregate == handle.read()
    by_job = {r["job_id"]: r for r in offline.records}
    for name, data in events:
        if name != "job.result":
            continue
        doc = json.loads(data)
        ref = by_job[doc["job_id"]]
        assert doc["digest"] == ref["digest"]
        assert canonical_json(doc["payload"]) == \
            canonical_json(ref["payload"])

    # prometheus endpoint reports the lifecycle
    with urllib.request.urlopen(base + "/metrics", timeout=30) as resp:
        metrics = resp.read().decode()
    assert 'repro_serve_campaigns_total{tenant="ci",outcome="completed"}' \
        " 1" in metrics
