"""Bus layers: transfers, contention signals, per-master accounting."""

from repro.soc.kernel.hub import EventHub
from repro.soc.bus.layers import Bus


def make_bus(occupancy=2, latency=4):
    hub = EventHub()
    bus = Bus("spb", hub, occupancy, latency, "spb.transfer",
              "spb.contention")
    return bus, hub


def test_transfer_returns_latency():
    bus, hub = make_bus()
    wait, done = bus.transfer(10, "tc")
    assert wait == 0
    assert done == 14
    assert hub.total("spb.transfer") == 1


def test_contention_between_masters():
    bus, hub = make_bus(occupancy=4)
    bus.transfer(0, "dma")
    wait, done = bus.transfer(1, "tc")
    assert wait == 3
    assert hub.total("spb.contention") == 3
    assert bus.per_master_waits["tc"] == 3
    assert "dma" not in bus.per_master_waits


def test_per_master_grant_counts():
    bus, _ = make_bus()
    bus.transfer(0, "tc")
    bus.transfer(10, "tc")
    bus.transfer(20, "pcp")
    assert bus.per_master_grants == {"tc": 2, "pcp": 1}
    assert bus.total_transfers == 3


def test_latency_override():
    bus, _ = make_bus(occupancy=1, latency=4)
    wait, done = bus.transfer(0, "tc", latency=9)
    assert done == 9


def test_reset():
    bus, _ = make_bus()
    bus.transfer(0, "tc")
    bus.reset()
    assert bus.total_transfers == 0
    assert bus.per_master_grants == {}
