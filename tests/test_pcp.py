"""PCP core: channel programs, service flow, shared-fabric contention."""

import pytest

from repro.soc.config import tc1797_config
from repro.soc.cpu import isa
from repro.soc.device import Soc
from repro.soc.kernel import signals
from repro.soc.memory import map as amap
from repro.soc.peripherals.basic import PeriodicTimer
from repro.workloads.program import ProgramBuilder


def make_channel_program(body):
    builder = ProgramBuilder(code_base=amap.PFLASH_BASE + 0xE0_0000)
    prog = builder.function("chan")
    body(prog)
    prog.ret()
    return builder.assemble(entry="chan")


def make_pcp_soc(body, period=200):
    soc = Soc(tc1797_config(), seed=11)
    builder = ProgramBuilder(code_base=amap.PSPR_BASE)
    builder.function("main").halt()
    soc.load_program(builder.assemble())
    srn = soc.icu.add_srn("pcpreq", 6, core="pcp")
    soc.pcp.bind_channel(srn.id, make_channel_program(body))
    soc.add_peripheral(PeriodicTimer("t", soc.hub, soc.icu, srn.id, period))
    return soc, srn


def test_channel_program_runs_on_request():
    soc, srn = make_pcp_soc(lambda f: f.alu(5))
    soc.run(1000)
    assert soc.pcp.services >= 4
    assert soc.hub.total(signals.PCP_IRQ_ENTRY) == soc.pcp.services
    assert soc.pcp.retired >= soc.pcp.services * 6  # 5 alu + ret


def test_pcp_does_not_disturb_tricore_retirement():
    soc, _ = make_pcp_soc(lambda f: f.alu(5))
    soc.run(500)
    assert soc.cpu.retired == 0     # main halted, no TC vectors
    assert soc.hub.total(signals.TC_IRQ_ENTRY) == 0


def test_pcp_memory_stalls_counted():
    soc, _ = make_pcp_soc(
        lambda f: f.load(isa.FixedAddr(amap.PERIPH_BASE + 0x200)).alu(2))
    soc.run(1000)
    assert soc.hub.total(signals.PCP_STALL) > 0


def test_pcp_loop_and_call():
    def body(f):
        f.loop(4, lambda g: g.mac(2))
        f.call("sub")
    builder = ProgramBuilder(code_base=amap.PFLASH_BASE + 0xE0_0000)
    prog = builder.function("chan")
    body(prog)
    prog.ret()
    sub = builder.function("sub")
    sub.alu(3)
    sub.ret()
    program = builder.assemble(entry="chan")

    soc = Soc(tc1797_config(), seed=11)
    pb = ProgramBuilder(code_base=amap.PSPR_BASE)
    pb.function("main").halt()
    soc.load_program(pb.assemble())
    srn = soc.icu.add_srn("pcpreq", 6, core="pcp")
    soc.pcp.bind_channel(srn.id, program)
    soc._ensure_order()
    soc.icu.raise_request(srn.id)
    soc.run(200)
    assert soc.pcp.services == 1
    assert soc.pcp.active_program is None    # completed
    # loop: 4*(ld-free mac,mac)+loop closes, call/ret, subroutine
    assert soc.pcp.retired >= 15


def test_disabled_pcp_ignores_requests():
    cfg = tc1797_config()
    cfg.pcp.enabled = False
    soc = Soc(cfg, seed=11)
    pb = ProgramBuilder(code_base=amap.PSPR_BASE)
    pb.function("main").halt()
    soc.load_program(pb.assemble())
    srn = soc.icu.add_srn("pcpreq", 6, core="pcp")
    soc.pcp.bind_channel(srn.id, make_channel_program(lambda f: f.alu(1)))
    soc._ensure_order()
    soc.icu.raise_request(srn.id)
    soc.run(100)
    assert soc.pcp.retired == 0


def test_pcp_reset():
    soc, _ = make_pcp_soc(lambda f: f.alu(5))
    soc.run(500)
    soc.reset()
    assert soc.pcp.retired == 0
    assert soc.pcp.active_program is None
