"""End-to-end integration: the full methodology pipeline on one device.

Profile -> locate poor-IPC windows -> root-cause them -> quantify and rank
architecture options — the complete workflow of the paper, in one test.
"""

import pytest

from repro.core.optimization import (OptionEvaluator, hardware_options,
                                     report)
from repro.core.profiling import ProfilingSession, analysis, spec
from repro.soc.config import tc1797_config
from repro.soc.kernel import signals
from repro.workloads.engine import EngineControlScenario


@pytest.fixture(scope="module")
def profiled():
    scenario = EngineControlScenario()
    device = scenario.build(tc1797_config(),
                            {"anomaly": True, "anomaly_period": 40_000},
                            seed=55)
    session = ProfilingSession(device, spec.engine_parameter_set(
        ipc_resolution=512))
    result = session.run(250_000)
    return device, result


def test_profile_covers_run(profiled):
    device, result = profiled
    assert result.cycles_run == 250_000
    assert len(result["tc.ipc"]) == 250_000 // 512
    assert result.lost_messages == 0        # fits the 512 KB EMEM


def test_dips_detected_and_explained(profiled):
    device, result = profiled
    threshold = result["tc.ipc"].mean_rate() * 0.8
    diagnoses = analysis.diagnose(result, ipc_threshold=threshold)
    assert diagnoses, "anomaly bursts must show up as poor-IPC windows"
    causes = [d.primary_cause for d in diagnoses]
    # the anomaly is a flash-hostile scan: flash/stall rates must dominate
    flash_related = {"flash.data_access_rate", "tc.load_stall_rate",
                     "flash.data_buffer_hit_rate", "bus.contention_rate",
                     "icache.miss_rate"}
    assert any(c in flash_related for c in causes)


def test_fine_resolution_exceeds_dap_coarse_fits():
    """Resolution is the bandwidth knob (paper: 'configurable resolution').

    Fine windows (100 instructions) overwhelm the 2-pin DAP and rely on the
    EMEM buffer; coarse windows stream continuously within the wire budget.
    """
    scenario = EngineControlScenario()

    def bandwidth(ipc_res, per):
        device = scenario.build(tc1797_config(), {}, seed=55)
        session = ProfilingSession(
            device, spec.engine_parameter_set(ipc_resolution=ipc_res,
                                              rate_per=per))
        result = session.run(120_000)
        return result.bandwidth_mbps(), device.dap.bandwidth_mbps

    fine, dap = bandwidth(256, 100)
    coarse, _ = bandwidth(4096, 10_000)
    assert fine > dap
    assert coarse < dap


def test_option_pipeline_on_profiled_workload():
    evaluator = OptionEvaluator(
        EngineControlScenario(), tc1797_config(),
        hardware_options()[:3], work_instructions=50_000, seed=55)
    results = evaluator.evaluate()
    table = report.ranking_table(results)
    assert len(results) == 3
    assert "gain/cost" in table


def test_measured_rates_match_oracle(profiled):
    device, result = profiled
    counts = device.oracle()
    oracle_rate = counts[signals.DSPR_ACCESS] / counts[signals.TC_INSTR]
    assert result.mean_rate("dspr.access_rate") == pytest.approx(
        oracle_rate, rel=0.05)
