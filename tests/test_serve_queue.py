"""FairQueue: strict priority, weighted-fair interleaving, SFQ clocking."""

import pytest

from repro.serve import FairQueue


def drain(queue):
    out = []
    while True:
        entry = queue.pop()
        if entry is None:
            return out
        out.append(entry)


def test_fifo_within_one_tenant():
    q = FairQueue()
    for i in range(4):
        q.push(f"c{i}", "t1")
    assert [e.campaign_id for e in drain(q)] == ["c0", "c1", "c2", "c3"]


def test_strict_priority_beats_arrival_order():
    q = FairQueue()
    q.push("low-early", "t1", priority=0)
    q.push("high-late", "t2", priority=5)
    q.push("mid", "t3", priority=2)
    assert [e.campaign_id for e in drain(q)] == \
        ["high-late", "mid", "low-early"]


def test_best_priority_tracks_waiting_work():
    q = FairQueue()
    assert q.best_priority() is None
    q.push("a", "t1", priority=1)
    q.push("b", "t2", priority=3)
    assert q.best_priority() == 3
    q.pop()
    assert q.best_priority() == 1


def test_weighted_fair_interleaving_two_to_one():
    """Weight 2 dispatches twice per weight-1 dispatch when backlogged."""
    weights = {"heavy": 2.0, "light": 1.0}
    q = FairQueue(weight_of=lambda t: weights[t])
    for i in range(6):
        q.push(f"h{i}", "heavy")
    for i in range(3):
        q.push(f"l{i}", "light")
    order = [e.tenant for e in drain(q)]
    # every prefix should keep heavy ahead roughly 2:1 — exactly: after
    # each light dispatch, two heavies have gone out before the next
    for n in range(1, len(order) + 1):
        heavy = order[:n].count("heavy")
        light = order[:n].count("light")
        assert heavy >= 2 * light - 1
    assert order.count("heavy") == 6 and order.count("light") == 3


def test_equal_weights_alternate():
    q = FairQueue()
    for i in range(3):
        q.push(f"a{i}", "A")
    for i in range(3):
        q.push(f"b{i}", "B")
    tenants = [e.tenant for e in drain(q)]
    # SFQ with equal weight and cost interleaves A,B,A,B,...
    assert tenants == ["A", "B", "A", "B", "A", "B"]


def test_idle_tenant_rejoins_at_virtual_clock_no_banked_credit():
    """A tenant that sat idle cannot burst ahead of a backlogged one."""
    q = FairQueue()
    for i in range(4):
        q.push(f"busy{i}", "busy")
    q.pop()                       # vclock advances with dispatched work
    q.pop()
    q.push("idle0", "idle")       # re-enters at current virtual time
    q.push("idle1", "idle")
    order = [e.campaign_id for e in drain(q)]
    # idle tenant interleaves from *now* on; it does not pre-empt the
    # whole remaining backlog as if it had been accruing credit
    assert order[0] != "idle1"
    assert set(order) == {"busy2", "busy3", "idle0", "idle1"}
    assert order.index("idle0") < order.index("idle1")


def test_cost_scales_share():
    """A big campaign counts for more virtual time than a small one."""
    q = FairQueue()
    q.push("big", "A", cost=4.0)
    q.push("a-next", "A", cost=1.0)
    q.push("small1", "B", cost=1.0)
    q.push("small2", "B", cost=1.0)
    order = [e.campaign_id for e in drain(q)]
    # after A's expensive campaign, B gets both small ones before
    # A's next (finish tags: big=4, a-next=5, small1=1, small2=2)
    assert order == ["small1", "small2", "big", "a-next"]


def test_remove_and_depth():
    q = FairQueue()
    q.push("a", "t1")
    q.push("b", "t1")
    q.push("c", "t2")
    assert q.depth() == 3
    assert q.depth("t1") == 2
    assert q.tenants() == ["t1", "t2"]
    assert q.remove("b") is True
    assert q.remove("b") is False
    assert q.depth("t1") == 1
    assert [e.campaign_id for e in drain(q)] == ["a", "c"]


def test_peek_does_not_dispatch():
    q = FairQueue()
    q.push("a", "t1")
    assert q.peek().campaign_id == "a"
    assert len(q) == 1


def test_entries_snapshot_in_dispatch_order():
    q = FairQueue()
    q.push("low", "t1", priority=0)
    q.push("high", "t2", priority=9)
    assert [e.campaign_id for e in q.entries()] == ["high", "low"]
    assert len(q) == 2            # snapshot, not a drain


def test_rejects_nonpositive_cost_and_weight():
    q = FairQueue(weight_of=lambda t: 0.0)
    with pytest.raises(ValueError, match="weight"):
        q.push("a", "t1")
    q2 = FairQueue()
    with pytest.raises(ValueError, match="cost"):
        q2.push("a", "t1", cost=0.0)
