"""CPI-stack decomposition."""

import pytest

from repro.core.optimization import CpiStack
from repro.soc.config import tc1797_config
from repro.soc.cpu import isa
from repro.soc.device import Soc
from repro.soc.kernel import signals
from repro.soc.memory import map as amap

from tests.helpers import make_loop_program


def test_from_synthetic_counts():
    cfg = tc1797_config()
    counts = {
        signals.TC_INSTR: 1000,
        signals.TC_STALL_FETCH: 100,
        signals.TC_STALL_LOAD: 200,
        signals.TC_STALL_STORE: 0,
        signals.TC_BRANCH_TAKEN: 50,
        signals.TC_CSA: 10,
        signals.TC_IRQ_ENTRY: 5,
    }
    stack = CpiStack.from_counts(counts, cycles=2000, config=cfg)
    assert stack.cpi == 2.0
    assert stack.components["fetch_stall"] == pytest.approx(0.1)
    assert stack.components["load_stall"] == pytest.approx(0.2)
    assert stack.components["control_flow"] == pytest.approx(
        50 * cfg.cpu.branch_penalty / 1000)
    assert sum(stack.components.values()) == pytest.approx(2.0)


def test_zero_instructions():
    stack = CpiStack.from_counts({}, cycles=100, config=tc1797_config())
    assert stack.components == {}
    assert stack.ipc == 0.0


def test_components_sum_to_cpi_on_real_run():
    soc = Soc(tc1797_config(), seed=8)
    soc.load_program(make_loop_program(
        alu_per_iter=4,
        load_gen=isa.TableAddr(amap.PFLASH_BASE + 0x10_0000, 4, 1024,
                               locality=0.5)))
    soc.run(20_000)
    stack = CpiStack.from_counts(soc.oracle(), soc.cycle, soc.config)
    assert sum(stack.components.values()) == pytest.approx(stack.cpi,
                                                           rel=1e-6)
    assert stack.components["load_stall"] > 0
    assert stack.components["base"] > 0


def test_table_rendering():
    soc = Soc(tc1797_config(), seed=8)
    soc.load_program(make_loop_program(alu_per_iter=4))
    soc.run(5000)
    stack = CpiStack.from_counts(soc.oracle(), soc.cycle, soc.config)
    table = stack.as_table()
    assert "base" in table and "total" in table
