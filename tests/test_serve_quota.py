"""Token buckets and tenant admission on a fake clock."""

import pytest

from repro.errors import QuotaExceeded
from repro.serve import QuotaManager, TenantPolicy, TokenBucket


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def test_bucket_starts_full_and_allows_burst():
    clock = FakeClock()
    bucket = TokenBucket(capacity=3, refill_per_s=1.0, clock=clock)
    assert bucket.level() == pytest.approx(3.0)
    assert bucket.try_take() and bucket.try_take() and bucket.try_take()
    assert not bucket.try_take()


def test_refill_is_continuous_and_capped():
    clock = FakeClock()
    bucket = TokenBucket(capacity=2, refill_per_s=0.5, clock=clock)
    assert bucket.try_take(2)
    clock.advance(1.0)            # +0.5 tokens: not enough for 1
    assert not bucket.try_take()
    clock.advance(1.0)            # exactly 1.0 token now
    assert bucket.try_take()
    clock.advance(100.0)          # refill saturates at capacity
    assert bucket.level() == pytest.approx(2.0)


def test_seconds_until_matches_refill_rate():
    clock = FakeClock()
    bucket = TokenBucket(capacity=4, refill_per_s=2.0, clock=clock)
    assert bucket.try_take(4)
    assert bucket.seconds_until(1.0) == pytest.approx(0.5)
    assert bucket.seconds_until(3.0) == pytest.approx(1.5)
    clock.advance(0.5)
    assert bucket.seconds_until(1.0) == pytest.approx(0.0)


def test_zero_refill_never_recovers():
    clock = FakeClock()
    bucket = TokenBucket(capacity=1, refill_per_s=0.0, clock=clock)
    assert bucket.try_take()
    clock.advance(1e6)
    assert not bucket.try_take()
    assert bucket.seconds_until(1.0) == float("inf")


def test_bucket_validation():
    with pytest.raises(ValueError):
        TokenBucket(capacity=0, refill_per_s=1.0)
    with pytest.raises(ValueError):
        TokenBucket(capacity=1, refill_per_s=-1.0)


def test_policy_validation():
    with pytest.raises(ValueError):
        TenantPolicy(weight=0.0)
    with pytest.raises(ValueError):
        TenantPolicy(max_queued=0)


def test_admit_depth_cap_checked_before_token_draw():
    clock = FakeClock()
    quota = QuotaManager(default=TenantPolicy(burst=2, refill_per_s=0.0,
                                              max_queued=1), clock=clock)
    with pytest.raises(QuotaExceeded, match="queued or running"):
        quota.admit("t1", queued_now=1)
    # the rejected submission must not have burned a token
    assert quota.tokens("t1") == pytest.approx(2.0)
    quota.admit("t1", queued_now=0)
    assert quota.tokens("t1") == pytest.approx(1.0)


def test_admit_rate_limit_reports_retry_after():
    clock = FakeClock()
    quota = QuotaManager(default=TenantPolicy(burst=1, refill_per_s=0.25,
                                              max_queued=8), clock=clock)
    quota.admit("t1", queued_now=0)
    with pytest.raises(QuotaExceeded) as exc:
        quota.admit("t1", queued_now=1)
    assert exc.value.retry_after_s == pytest.approx(4.0)
    clock.advance(4.0)
    quota.admit("t1", queued_now=1)       # refilled


def test_overrides_grant_different_policies():
    clock = FakeClock()
    quota = QuotaManager(
        default=TenantPolicy(weight=1.0, burst=1, refill_per_s=0.0),
        overrides={"vip": TenantPolicy(weight=4.0, burst=10,
                                       refill_per_s=5.0)},
        clock=clock)
    assert quota.weight("anyone") == 1.0
    assert quota.weight("vip") == 4.0
    for _ in range(10):
        quota.admit("vip", queued_now=0)
    quota.admit("someone-else", queued_now=0)
    with pytest.raises(QuotaExceeded):      # default burst=1 exhausted
        quota.admit("someone-else", queued_now=1)


def test_buckets_are_per_tenant():
    clock = FakeClock()
    quota = QuotaManager(default=TenantPolicy(burst=1, refill_per_s=0.0),
                         clock=clock)
    quota.admit("a", queued_now=0)
    quota.admit("b", queued_now=0)        # b has its own bucket
    with pytest.raises(QuotaExceeded):
        quota.admit("a", queued_now=0)
