"""Trace message encoding: bit-size accounting."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mcds.messages import MessageFactory, _varlen_bits


def test_varlen_bits_chunked():
    assert _varlen_bits(0) == 8
    assert _varlen_bits(1) == 8
    assert _varlen_bits(255) == 8
    assert _varlen_bits(256) == 16
    assert _varlen_bits(-300) == 16


@settings(max_examples=50, deadline=None)
@given(st.integers(0, 2**40))
def test_varlen_bits_multiple_of_chunk(value):
    bits = _varlen_bits(value)
    assert bits % 8 == 0
    assert bits >= 8
    assert 2 ** bits >= value + 1 or bits >= value.bit_length()


def test_rate_sample_smaller_than_raw_counter_pair():
    """The paper's bandwidth claim at message level: one compact rate
    message beats sampling two long counters."""
    f1 = MessageFactory()
    f2 = MessageFactory()
    rate = f1.rate_sample(1000, "ipc", 250)
    raw_a = f2.counter_raw(1000, "instr", 123_456_789)
    raw_b = f2.counter_raw(1000, "cycles", 987_654_321)
    assert rate.bits < raw_a.bits + raw_b.bits


def test_timestamps_are_delta_encoded():
    factory = MessageFactory()
    first = factory.rate_sample(1_000_000, "c", 1)
    second = factory.rate_sample(1_000_010, "c", 1)
    # small delta -> small stamp; first message carries the large absolute
    assert second.bits < first.bits


def test_timestamp_disabled_shrinks_messages():
    with_ts = MessageFactory(timestamp_enabled=True)
    without = MessageFactory(timestamp_enabled=False)
    assert (without.rate_sample(500, "c", 9).bits
            < with_ts.rate_sample(500, "c", 9).bits)


def test_branch_compression_relative_addresses():
    factory = MessageFactory(timestamp_enabled=False)
    near = factory.branch(0, 0x8000_0100, 0x8000_0140,
                          last_reported=0x8000_0100)
    far = factory.branch(0, 0x8000_0100, 0xD000_0000,
                         last_reported=0x8000_0100)
    assert near.bits < far.bits


def test_sync_carries_full_address():
    factory = MessageFactory(timestamp_enabled=False)
    sync = factory.sync(0, 0x8000_0000)
    branch = factory.branch(0, 0x8000_0000, 0x8000_0020, 0x8000_0000)
    assert sync.bits > branch.bits


def test_tick_is_tiny():
    factory = MessageFactory(timestamp_enabled=False)
    assert factory.tick(0, 3).bits <= 8


def test_data_access_message_fields():
    factory = MessageFactory(timestamp_enabled=False)
    msg = factory.data_access(5, 0xD000_0010, True, 0xD000_0000)
    assert msg.extra["write"] is True
    assert msg.address == 0xD000_0010


def test_factory_reset_restores_stamp_base():
    factory = MessageFactory()
    factory.rate_sample(1_000_000, "c", 1)
    factory.reset()
    fresh = factory.rate_sample(10, "c", 1)
    rebuilt = MessageFactory().rate_sample(10, "c", 1)
    assert fresh.bits == rebuilt.bits
