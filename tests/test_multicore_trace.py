"""Multi-core tracing: parallel TC+PCP capture, cycle-level ordering."""

import pytest

from repro.ed.device import EdConfig, EmulationDevice
from repro.mcds import messages as msgs
from repro.soc.config import tc1797_config
from repro.workloads.engine import EngineControlScenario


@pytest.fixture(scope="module")
def traced_device():
    device = EngineControlScenario().build(
        tc1797_config(), {"use_pcp": True, "adc_khz": 50}, seed=44)
    device.mcds.add_program_trace(core="tc")
    device.mcds.add_program_trace(core="pcp")
    device.run(150_000)
    return device


def test_both_cores_traced(traced_device):
    by_unit = {}
    for ptu in traced_device.mcds.program_traces:
        by_unit[ptu.name] = ptu.messages
    assert by_unit["ptu.tc"] > 0
    assert by_unit["ptu.pcp"] > 0


def test_pcp_trace_counts_match_core(traced_device):
    pcp_ptu = next(p for p in traced_device.mcds.program_traces
                   if p.name == "ptu.pcp")
    assert pcp_ptu.instructions_traced == traced_device.pcp.retired


def test_messages_interleave_in_cycle_order(traced_device):
    """Paper Section 3: 'conserving the order of events down to cycle
    level' — the shared EMEM stream is timestamp-ordered across cores."""
    stream = traced_device.emem.contents()
    cycles = [m.cycle for m in stream]
    assert cycles == sorted(cycles)
    sources = {m.source for m in stream if m.kind == msgs.IPT_BRANCH}
    assert "ptu" in sources or len(sources) >= 1


def test_pcp_channel_entries_visible(traced_device):
    pcp_ptu = next(p for p in traced_device.mcds.program_traces
                   if p.name == "ptu.pcp")
    # every ADC service produced at least an entry discontinuity
    assert pcp_ptu.messages >= traced_device.pcp.services
