"""CLI: every subcommand runs and prints the expected artifacts."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


def test_topology(capsys):
    code, out = run_cli(capsys, "topology")
    assert code == 0
    assert "tricore" in out and "mcds" in out
    assert "dap -> ecerberus -> bbb -> emem" in out


def test_topology_tc1767(capsys):
    code, out = run_cli(capsys, "--device", "tc1767", "topology")
    assert code == 0
    assert "tc1767ED" in out


def test_unknown_device_exits():
    with pytest.raises(SystemExit):
        main(["--device", "tc9999", "topology"])


def test_profile(capsys):
    code, out = run_cli(capsys, "profile", "--cycles", "60000")
    assert code == 0
    assert "tc.ipc" in out
    assert "Mbit/s" in out


def test_profile_anomaly_finds_dips(capsys):
    code, out = run_cli(capsys, "profile", "--cycles", "150000", "--anomaly",
                        "--resolution", "512")
    assert code == 0
    assert "poor-IPC windows" in out


def test_trace(capsys):
    code, out = run_cli(capsys, "trace", "--cycles", "40000")
    assert code == 0
    assert "bits/instr" in out
    assert "discontinuities" in out


def test_trace_other_scenario(capsys):
    code, out = run_cli(capsys, "trace", "--cycles", "40000",
                        "--scenario", "transmission")
    assert code == 0
    assert "decoded" in out


def test_unknown_scenario_exits():
    with pytest.raises(SystemExit):
        main(["profile", "--scenario", "spaceship"])


def test_explore_hardware_only(capsys):
    code, out = run_cli(capsys, "explore", "--work", "40000",
                        "--hardware-only")
    assert code == 0
    assert "gain/cost" in out
    assert "mean absolute error" in out
    assert "tables_dspr" not in out     # software options excluded


def test_customers(capsys):
    code, out = run_cli(capsys, "customers", "--count", "2",
                        "--cycles", "30000")
    assert code == 0
    assert "customer00" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_report(capsys, tmp_path):
    json_path = tmp_path / "profile.json"
    csv_path = tmp_path / "summary.csv"
    code, out = run_cli(capsys, "report", "--cycles", "60000",
                        "--json", str(json_path), "--csv", str(csv_path))
    assert code == 0
    assert "Enhanced System Profiling report" in out
    assert "CPI stack" in out
    assert json_path.exists() and csv_path.exists()
    import json as json_mod
    payload = json_mod.loads(json_path.read_text())
    assert payload["cycles_run"] == 60000


def test_campaign(capsys, tmp_path):
    code, out = run_cli(capsys, "campaign", "--count", "3",
                        "--cycles", "15000", "--workers", "2",
                        "--cache-dir", str(tmp_path / "cache"),
                        "--campaign-dir", str(tmp_path / "run"))
    assert code == 0
    assert "3 jobs over 2 workers" in out
    assert "worker utilization" in out
    assert "customer00" in out
    assert (tmp_path / "run" / "campaign.jsonl").exists()
    assert (tmp_path / "run" / "aggregate.json").exists()


def test_campaign_warm_cache_rerun(capsys, tmp_path):
    args = ["campaign", "--count", "2", "--cycles", "15000",
            "--workers", "0",
            "--cache-dir", str(tmp_path / "cache"),
            "--campaign-dir", str(tmp_path / "run")]
    run_cli(capsys, *args)
    code, out = run_cli(capsys, *args)
    assert code == 0
    assert "cache hits 2 (100%)" in " ".join(out.split())
    assert "executed 0" in " ".join(out.split())


def test_campaign_drill_quarantines(capsys, tmp_path):
    code, out = run_cli(capsys, "campaign", "--count", "2",
                        "--cycles", "15000", "--workers", "2",
                        "--retries", "1", "--drill",
                        "--campaign-dir", str(tmp_path / "run"))
    assert code == 0                 # quarantine is not a campaign failure
    assert "quarantined: fault-drill-" in out
    assert "customer00" in out       # healthy jobs still reported


def test_campaign_drill_strict_exits_nonzero(capsys, tmp_path):
    code, out = run_cli(capsys, "campaign", "--count", "2",
                        "--cycles", "15000", "--workers", "2",
                        "--retries", "0", "--drill", "--strict")
    assert code == 1


def test_campaign_rank(capsys, tmp_path):
    code, out = run_cli(capsys, "campaign", "--count", "2",
                        "--cycles", "15000", "--workers", "0",
                        "--work", "20000", "--rank")
    assert code == 0
    assert "volume-weighted portfolio ranking" in out
    assert "gain/cost" in out


def test_telemetry_subcommand_writes_artifacts(capsys, tmp_path):
    import json
    trace = tmp_path / "trace.json"
    metrics = tmp_path / "metrics.prom"
    events = tmp_path / "events.jsonl"
    code, out = run_cli(capsys, "telemetry", "--count", "2",
                        "--cycles", "15000",
                        "--trace-out", str(trace),
                        "--metrics-out", str(metrics),
                        "--events-out", str(events))
    assert code == 0
    assert "telemetry trace:" in out
    body = json.loads(trace.read_text())
    names = {e["name"] for e in body["traceEvents"]}
    assert {"campaign", "job.execute", "sim.advance",
            "pipeline.decode"} <= names
    prom = metrics.read_text()
    # the four metric families the telemetry run must cover
    for family in ("repro_sim_cycles_total", "repro_pipeline_messages_total",
                   "repro_faults_injected_total", "repro_fleet_jobs_total"):
        assert f"# TYPE {family} counter" in prom
    records = [json.loads(line)
               for line in events.read_text().splitlines()]
    assert records[0]["event"] == "campaign.start"
    assert records[-1]["event"] == "campaign.end"
    assert len({r["run_id"] for r in records}) == 1


def test_campaign_telemetry_flags(capsys, tmp_path):
    import json
    trace = tmp_path / "trace.json"
    code, out = run_cli(capsys, "campaign", "--count", "2",
                        "--cycles", "15000", "--workers", "2",
                        "--trace-out", str(trace),
                        "--metrics-out", str(tmp_path / "m.prom"))
    assert code == 0
    body = json.loads(trace.read_text())
    jobs = [e for e in body["traceEvents"]
            if e["name"] == "job.execute" and e["ph"] == "X"]
    # retro-emitted spans carry the worker pids
    assert len(jobs) == 2 and all(e["pid"] != 0 for e in jobs)
    assert "repro_fleet_jobs_total" in (tmp_path / "m.prom").read_text()


def test_profile_kernel_telemetry_flags(capsys, tmp_path):
    metrics = tmp_path / "k.prom"
    code, out = run_cli(capsys, "profile-kernel", "--cycles", "20000",
                        "--wall", "--metrics-out", str(metrics))
    assert code == 0
    assert "quiescent speedup" in out        # old output shape kept
    prom = metrics.read_text()
    # both kernel modes fold into the same schema repro telemetry uses
    assert 'repro_kernel_cycles_per_sec{kernel="naive"}' in prom
    assert 'repro_kernel_cycles_per_sec{kernel="quiescent"}' in prom
    assert "repro_kernel_component_ticks_total" in prom
    assert "repro_kernel_component_wall_seconds" in prom


def test_profile_kernel_top_table(capsys):
    # --top implies --wall: no explicit flag needed for self-time ranking
    code, out = run_cli(capsys, "profile-kernel", "--cycles", "20000",
                        "--top", "2")
    assert code == 0
    for mode in ("naive", "quiescent"):
        header = f"top 2 components by tick self-time ({mode}):"
        assert header in out
        block = out.split(header, 1)[1].splitlines()
        # header row + exactly 2 ranked rows before the blank line
        ranked = []
        for line in block[2:]:
            if not line.strip():
                break
            ranked.append(line)
        assert len(ranked) == 2
    # the hottest engine component is the CPU, on both kernels
    assert out.count("  1 tricore") == 2


def test_catalog_prints_document(capsys):
    code, out = run_cli(capsys, "catalog")
    assert code == 0
    import json as json_mod
    doc = json_mod.loads(out)
    assert set(doc["devices"]) == {"tc1767", "tc1797"}
    assert doc["catalog_schema"] == 1


def test_catalog_writes_artifact(capsys, tmp_path):
    path = tmp_path / "catalog.json"
    code, out = run_cli(capsys, "catalog", "--out", str(path))
    assert code == 0
    assert "catalog: wrote" in out
    from repro.serve import build_catalog, load_catalog
    assert load_catalog(str(path)) == build_catalog()
