"""Property test: batch-lane payloads are byte-identical to scalar ones.

Hypothesis drives random fault-free portfolios — engine and transmission
customers with parameters drawn from the same value spaces the customer
generator samples, random lane counts, budgets, seeds, measurement grids,
and sweep strides — through both backends and asserts the canonical-JSON
bytes of every per-customer payload agree.  This is the backend's whole
contract (docs/batch.md): which backend ran must never be recoverable
from the results.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.batch import HAVE_NUMPY, run_lane_group
from repro.fleet import CampaignJob
from repro.fleet.spec import canonical_json
from repro.fleet.worker import run_shard

pytestmark = pytest.mark.skipif(not HAVE_NUMPY,
                                reason="numpy extra not installed")

# parameter spaces mirror repro.workloads.generator's customer sampling
engine_params = st.fixed_dictionaries({
    "rpm": st.sampled_from([2500, 4500, 6500]),
    "teeth": st.sampled_from([36, 60]),
    "adc_khz": st.sampled_from([10, 25, 50]),
    "knock_taps": st.sampled_from([8, 16, 32]),
    "use_pcp": st.booleans(),
    "use_dma": st.booleans(),
    "background_blocks": st.sampled_from([40, 64]),
    "table_locality": st.sampled_from([0.75, 0.9]),
})

transmission_params = st.fixed_dictionaries({
    "control_khz": st.sampled_from([1, 2, 4]),
    "shaft_hz": st.sampled_from([400, 900, 1800]),
    "use_pcp": st.booleans(),
    "background_blocks": st.sampled_from([24, 40]),
    "table_locality": st.sampled_from([0.7, 0.92]),
})

lanes_strategy = st.lists(
    st.one_of(st.tuples(st.just("engine"), engine_params),
              st.tuples(st.just("transmission"), transmission_params)),
    min_size=1, max_size=4)

# device stays tc1797: the scenario calibration tables live in the upper
# flash megabytes, beyond the tc1767's 2 MB array (scalar refuses too)
config_strategy = st.fixed_dictionaries({
    "device": st.just("tc1797"),
    "cycles": st.integers(1_500, 5_000),
    "seed": st.integers(0, 2**16),
    "ipc_resolution": st.sampled_from([64, 256, 1_000]),
    "rate_per": st.sampled_from([50, 100]),
})


@settings(max_examples=15, deadline=None)
@given(config=config_strategy, lanes=lanes_strategy,
       stride=st.sampled_from([1_000, 8_192]))
def test_batch_payloads_byte_identical_to_scalar(config, lanes, stride):
    jobs = [CampaignJob(name=f"lane{i}", domain=domain, params=params,
                        **config).to_dict()
            for i, (domain, params) in enumerate(lanes)]
    scalar = run_shard([dict(job) for job in jobs])
    assert [o["status"] for o in scalar] == ["ok"] * len(jobs)
    payloads = run_lane_group(jobs, stride=stride)
    assert len(payloads) == len(scalar)
    for batch_payload, outcome in zip(payloads, scalar):
        assert canonical_json(batch_payload) == \
            canonical_json(outcome["payload"])
