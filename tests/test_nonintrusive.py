"""Non-intrusiveness (paper Section 5, experiment E8).

"all these parameters can be dynamically and in parallel measured,
non-intrusively" — attaching the full MCDS measurement stack must not
change the product-chip execution by a single cycle.  We compare complete
oracle snapshots and CPU state between an unobserved run and a run with
every observation feature armed.
"""

import pytest

from repro.core.profiling import (FunctionProfiler, MultiResolutionRate,
                                  ProfilingSession, spec)
from repro.mcds.counters import CYCLES
from repro.mcds.trace import TraceFanout
from repro.soc.config import tc1797_config
from repro.soc.memory import map as amap
from repro.workloads.engine import EngineControlScenario

CYCLES_TO_RUN = 120_000


def run_device(observe):
    scenario = EngineControlScenario()
    device = scenario.build(tc1797_config(), {"anomaly": True}, seed=77)
    if observe:
        ProfilingSession(device, spec.engine_parameter_set())
        MultiResolutionRate(device, "gate", ["tc.instr_executed"],
                            low_resolution=1024, high_resolution=64,
                            threshold_rate=0.5, basis=CYCLES)
        device.mcds.add_program_trace(cycle_accurate=True)
        device.mcds.add_data_trace((amap.PFLASH_BASE,
                                    amap.PFLASH_BASE + 0x40_0000))
        device.mcds.add_bus_trace("spb.transfer")
        profiler = FunctionProfiler(device.cpu.program)
        device.cpu.trace.add(profiler)
    device.run(CYCLES_TO_RUN)
    return device


@pytest.fixture(scope="module")
def pair():
    return run_device(False), run_device(True)


def test_cycle_exact_same_retirement(pair):
    bare, observed = pair
    assert bare.cpu.retired == observed.cpu.retired
    assert bare.cpu.pc == observed.cpu.pc


def test_identical_oracle_totals(pair):
    bare, observed = pair
    assert bare.oracle() == observed.oracle()


def test_observed_run_actually_measured(pair):
    _, observed = pair
    assert observed.mcds.total_messages > 1000
    assert observed.emem.total_stored > 0


def test_pcp_and_dma_unperturbed(pair):
    bare, observed = pair
    assert bare.pcp.retired == observed.pcp.retired
    assert bare.soc.dma.transfers_done == observed.soc.dma.transfers_done


def test_calibration_overlay_is_the_exception():
    """The overlay deliberately changes timing — it is calibration, not
    observation; everything else must stay at zero perturbation."""
    scenario = EngineControlScenario()
    device = scenario.build(tc1797_config(), {}, seed=77)
    device.reserve_calibration(128)
    fuel_base = amap.PFLASH_BASE + 0x20_0000
    device.map_calibration_overlay(fuel_base, 0x8000)
    device.run(CYCLES_TO_RUN)
    bare = run_device(False)
    assert device.cpu.retired != bare.cpu.retired
