"""Timer-cell array: compare one-shots, captures, late programming."""

import pytest

from repro.soc.config import tc1797_config
from repro.soc.device import Soc
from repro.soc.memory import map as amap
from repro.soc.peripherals.timer_cells import (TCELL_CAPTURE, TCELL_MATCH,
                                               TimerCellArray)
from repro.workloads.program import ProgramBuilder


def make_soc_with_cells():
    soc = Soc(tc1797_config(), seed=49)
    builder = ProgramBuilder(code_base=amap.PSPR_BASE)
    builder.function("main").halt()
    soc.load_program(builder.assemble())
    cells = TimerCellArray("gpta", soc.hub, soc.icu)
    soc.add_peripheral(cells)
    return soc, cells


def test_compare_fires_at_programmed_cycle():
    soc, cells = make_soc_with_cells()
    soc._ensure_order()
    cells.set_compare(0, fire_at=100)
    soc.run(99)
    assert cells.compare[0].matches == 0
    soc.run(2)
    assert cells.compare[0].matches == 1
    assert soc.hub.total(TCELL_MATCH) == 1
    # one-shot: stays quiet afterwards
    soc.run(100)
    assert cells.compare[0].matches == 1


def test_compare_raises_srn():
    soc, cells = make_soc_with_cells()
    srn = soc.icu.add_srn("inj", 6)
    cells.bind_compare_srn(1, srn.id)
    soc._ensure_order()
    cells.set_compare(1, fire_at=50)
    soc.run(60)
    assert srn.raised_count == 1


def test_late_programming_detected():
    soc, cells = make_soc_with_cells()
    soc._ensure_order()
    soc.run(100)
    cells.set_compare(0, fire_at=50)    # deadline already passed
    assert cells.compare[0].late_writes == 1
    soc.run(5)
    assert cells.compare[0].matches == 1   # fires immediately


def test_cancel_compare():
    soc, cells = make_soc_with_cells()
    soc._ensure_order()
    cells.set_compare(2, fire_at=40)
    cells.cancel_compare(2)
    soc.run(100)
    assert cells.compare[2].matches == 0


def test_reprogramming_replaces_compare():
    soc, cells = make_soc_with_cells()
    soc._ensure_order()
    cells.set_compare(0, fire_at=500)
    cells.set_compare(0, fire_at=50)
    soc.run(60)
    assert cells.compare[0].matches == 1
    soc.run(500)
    assert cells.compare[0].matches == 1


def test_capture_latches_time():
    soc, cells = make_soc_with_cells()
    soc._ensure_order()
    soc.run(123)
    stamp = cells.capture_event(0)
    assert stamp == 122                  # last ticked cycle
    assert cells.capture[0].timestamps == [122]
    assert soc.hub.total(TCELL_CAPTURE) == 1


def test_capture_raises_srn():
    soc, cells = make_soc_with_cells()
    srn = soc.icu.add_srn("speed_edge", 6)
    cells.bind_capture_srn(0, srn.id)
    soc._ensure_order()
    soc.run(10)
    cells.capture_event(0)
    assert srn.raised_count == 1


def test_reset():
    soc, cells = make_soc_with_cells()
    soc._ensure_order()
    cells.set_compare(0, fire_at=1000)
    soc.run(10)
    cells.capture_event(0)
    cells.reset()
    assert cells.compare[0].compare_at is None
    assert cells.capture[0].timestamps == []
