"""Embedded flash: wait states, port buffers, prefetch, bank conflicts."""

import pytest

from repro.soc.config import FlashConfig
from repro.soc.kernel import signals
from repro.soc.kernel.hub import EventHub
from repro.soc.memory.flash import EmbeddedFlash

BASE = 0x8000_0000


def make_flash(freq=180, **kwargs):
    hub = EventHub()
    cfg = FlashConfig(**kwargs)
    return EmbeddedFlash(cfg, freq, hub), hub


def test_wait_states_scale_with_frequency():
    cfg = FlashConfig(access_time_ns=30.0)
    assert cfg.wait_states(180) == 5   # 5.4 cycles -> 6 total -> 5 WS
    assert cfg.wait_states(133) == 3
    assert cfg.wait_states(80) == 2
    assert cfg.wait_states(270) > cfg.wait_states(180)


def test_code_fetch_miss_pays_wait_states():
    flash, hub = make_flash(prefetch_enabled=False)
    done = flash.fetch_line(0, BASE)
    assert done == flash.wait_states + 1
    assert hub.total(signals.PFLASH_CODE_ACCESS) == 1


def test_code_buffer_hit_is_fast():
    flash, hub = make_flash(prefetch_enabled=False)
    done = flash.fetch_line(0, BASE)
    done2 = flash.fetch_line(done, BASE + 4)  # same line
    assert done2 == done + 1
    assert hub.total(signals.PFLASH_BUF_HIT_CODE) == 1


def test_prefetch_covers_sequential_line():
    flash, hub = make_flash(prefetch_enabled=True)
    done = flash.fetch_line(0, BASE)
    # next line was prefetched; waiting long enough makes it a fast hit
    later = done + 2 * (flash.wait_states + 1)
    done2 = flash.fetch_line(later, BASE + 32)
    assert done2 == later + 1
    assert hub.total(signals.PFLASH_PREFETCH) == 1
    assert hub.total(signals.PFLASH_BUF_HIT_CODE) == 1


def test_prefetched_line_not_ready_immediately():
    flash, hub = make_flash(prefetch_enabled=True)
    done = flash.fetch_line(0, BASE)
    # ask for the prefetched line right away: counted as buffer hit but the
    # data is still streaming out of the array
    done2 = flash.fetch_line(done, BASE + 32)
    assert done2 > done + 1


def test_data_buffer_fifo_eviction():
    flash, hub = make_flash(data_buffer_lines=1)
    flash.read_data(0, BASE + 0x1000)
    t = 100
    flash.read_data(t, BASE + 0x2000)       # evicts line of 0x1000
    done = flash.read_data(t + 50, BASE + 0x1000)
    assert done > t + 51                    # miss again
    assert hub.total(signals.PFLASH_BUF_HIT_DATA) == 0


def test_data_buffer_hit():
    flash, hub = make_flash(data_buffer_lines=2)
    done = flash.read_data(0, BASE + 0x1000)
    done2 = flash.read_data(done, BASE + 0x1004)
    assert done2 == done + 1
    assert hub.total(signals.PFLASH_BUF_HIT_DATA) == 1


def test_port_conflict_on_same_bank():
    flash, hub = make_flash(size_kb=4096, banks=2, prefetch_enabled=False)
    # both accesses in bank 0 (first 2 MB)
    flash.fetch_line(0, BASE)
    flash.read_data(1, BASE + 0x10_0000)
    assert hub.total(signals.PFLASH_PORT_CONFLICT) > 0


def test_no_conflict_across_banks():
    flash, hub = make_flash(size_kb=4096, banks=2, prefetch_enabled=False)
    flash.fetch_line(0, BASE)                      # bank 0
    done = flash.read_data(1, BASE + 0x20_0000)    # bank 1 (>= 2 MB)
    assert hub.total(signals.PFLASH_PORT_CONFLICT) == 0
    assert done == 1 + flash.wait_states + 1


def test_same_port_queueing_is_not_a_conflict():
    flash, hub = make_flash(prefetch_enabled=False)
    flash.read_data(0, BASE + 0x1000)
    flash.read_data(1, BASE + 0x4000)   # same bank, same (data) port
    assert hub.total(signals.PFLASH_PORT_CONFLICT) == 0


def test_reset_clears_buffers_and_banks():
    flash, hub = make_flash()
    flash.fetch_line(0, BASE)
    flash.reset()
    assert flash.code_buffer.get((BASE & 0x0FFF_FFFF) >> 5) is None
    assert all(bank.busy_until == 0 for bank in flash.banks)
