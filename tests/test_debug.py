"""Debug run control: watchpoints and breakpoints halt the core."""

import pytest

from repro.ed.device import EdConfig, EmulationDevice
from repro.mcds.debug import resume
from repro.soc.config import tc1797_config
from repro.soc.cpu import isa
from repro.soc.memory import map as amap
from repro.soc.peripherals.basic import PeriodicTimer
from repro.workloads.program import ProgramBuilder


def make_device(store_addr=amap.DSPR_BASE + 0x500, store_every=None):
    builder = ProgramBuilder(code_base=amap.PSPR_BASE)
    main = builder.function("main")
    top = main.label("top")
    main.alu(4)
    if store_every is None:
        main.store(isa.FixedAddr(store_addr))
    main.jump(top)
    work = builder.function("work", base=amap.PSPR_BASE + 0x800)
    work.alu(2)
    work.ret()
    device = EmulationDevice(EdConfig(soc=tc1797_config()), seed=64)
    device.load_program(builder.assemble())
    return device


def test_watchpoint_halts_on_write():
    device = make_device()
    wp = device.mcds.add_watchpoint(
        (amap.DSPR_BASE + 0x500, amap.DSPR_BASE + 0x504), writes_only=True)
    device.run(100)
    assert wp.hit_count >= 1
    assert device.cpu.debug_halt
    halted_retired = device.cpu.retired
    device.run(50)
    assert device.cpu.retired == halted_retired   # really frozen


def test_watchpoint_range_validation():
    device = make_device()
    with pytest.raises(ValueError):
        device.mcds.add_watchpoint((100, 100))


def test_watchpoint_read_vs_write_filter():
    device = make_device()
    wp = device.mcds.add_watchpoint(
        (amap.DSPR_BASE + 0x600, amap.DSPR_BASE + 0x700), writes_only=True)
    device.run(200)
    assert wp.hit_count == 0          # program writes elsewhere
    assert not device.cpu.debug_halt


def test_watchpoint_custom_action_does_not_halt():
    device = make_device()
    seen = []
    device.mcds.add_watchpoint(
        (amap.DSPR_BASE + 0x500, amap.DSPR_BASE + 0x504),
        action=lambda cycle, addr, master: seen.append(cycle))
    device.run(200)
    assert seen
    assert not device.cpu.debug_halt


def test_debug_halt_blocks_interrupts():
    device = make_device()
    srn = device.soc.icu.add_srn("tick", 9)
    # no vector bound: the request would normally stay pending, but the
    # point is that a debug-halted core never even evaluates requests
    device.mcds.add_watchpoint(
        (amap.DSPR_BASE + 0x500, amap.DSPR_BASE + 0x504))
    device.soc.add_peripheral(PeriodicTimer(
        "t", device.hub, device.soc.icu, srn.id, 20))
    device.run(200)
    assert device.cpu.debug_halt
    entries = device.hub.total("tc.irq_entry")
    device.run(100)
    assert device.hub.total("tc.irq_entry") == entries


def test_resume_continues_execution():
    device = make_device()
    wp = device.mcds.add_watchpoint(
        (amap.DSPR_BASE + 0x500, amap.DSPR_BASE + 0x504))
    device.run(100)
    assert device.cpu.debug_halt
    frozen = device.cpu.retired
    wp.enabled = False
    resume(device.cpu)
    device.run(100)
    assert device.cpu.retired > frozen


def test_breakpoint_halts_at_function():
    builder = ProgramBuilder(code_base=amap.PSPR_BASE)
    main = builder.function("main")
    top = main.label("top")
    main.alu(10)
    main.call("work")
    main.jump(top)
    work = builder.function("work", base=amap.PSPR_BASE + 0x800)
    work.alu(2)
    work.ret()
    program = builder.assemble()
    device = EmulationDevice(EdConfig(soc=tc1797_config()), seed=64)
    device.load_program(program)
    bp = device.mcds.add_breakpoint(program.symbol("work"))
    device.run(200)
    assert bp.hit_count == 1
    assert device.cpu.debug_halt
    # stopped within the work window (trace-based break, end of cycle)
    assert program.symbol("work") <= device.cpu.pc \
        < program.symbol("work") + 0x40
