"""EEPROM emulation driver: records, sector swaps, wear."""

import pytest

from repro.soc.kernel.resource import TimedResource
from repro.soc.memory.eeprom import EepromEmulation


def make_driver(sector_bytes=256, record_bytes=16):
    dflash = TimedResource("dflash", occupancy=6)
    return EepromEmulation(dflash, sector_bytes=sector_bytes,
                           record_bytes=record_bytes), dflash


def test_needs_two_sectors():
    with pytest.raises(ValueError):
        EepromEmulation(TimedResource("d", 6), sectors=1)


def test_write_then_read_latest_version():
    driver, _ = make_driver()
    driver.write_record(0, record_id=1, value=100)
    driver.write_record(50, record_id=1, value=200)
    assert driver.read_record(60, 1) == 200
    assert driver.read_record(60, 99) is None
    assert driver.writes == 2


def test_writes_occupy_dflash():
    driver, dflash = make_driver()
    done = driver.write_record(0, 1, 5)
    assert done >= 6                    # program pulse
    assert dflash.busy_until >= 4 * 6   # long occupancy


def test_sector_swap_preserves_live_records():
    # sector holds 256 // (16+8) = 10 records
    driver, _ = make_driver(sector_bytes=256)
    now = 0
    for i in range(10):
        now = driver.write_record(now, record_id=i % 3, value=i)
    assert driver.swaps == 0
    now = driver.write_record(now + 10, record_id=7, value=777)
    assert driver.swaps == 1
    assert driver.active == 1
    # all previously-live records survived the copy
    for rid, expected in ((0, 9), (1, 7), (2, 8), (7, 777)):
        assert driver.read_record(now, rid) == expected


def test_swap_erase_blocks_dflash():
    driver, dflash = make_driver(sector_bytes=256)
    now = 0
    for i in range(11):   # force a swap
        now = driver.write_record(now + 100, record_id=i, value=i)
    assert driver.total_erase_cycles >= 256
    assert dflash.busy_until > now


def test_wear_levelling_distributes_erases():
    driver, _ = make_driver(sector_bytes=256)
    now = 0
    for i in range(100):
        now = driver.write_record(now + 200, record_id=i % 2, value=i)
    assert driver.swaps >= 4
    counts = [s.erase_count for s in driver.sectors]
    assert max(counts) - min(counts) <= 1     # alternating sectors
    assert driver.max_erase_count == max(counts)


def test_wear_report_renders():
    driver, _ = make_driver()
    driver.write_record(0, 1, 2)
    report = driver.wear_report()
    assert "erases" in report and "writes=1" in report
