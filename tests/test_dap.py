"""DAP tool interface: bandwidth-limited streaming and post-mortem upload."""

import pytest

from repro.ed.dap import DapInterface
from repro.ed.emem import EmulationMemory
from repro.mcds.messages import TraceMessage


def msg(cycle, bits=160):
    return TraceMessage("rate_sample", cycle, bits, "s", 1)


def test_bits_per_cycle_shrinks_with_frequency():
    emem = EmulationMemory(total_kb=1)
    slow_cpu = DapInterface(emem, 16.0, 80)
    fast_cpu = DapInterface(emem, 16.0, 360)
    assert fast_cpu.bits_per_cycle < slow_cpu.bits_per_cycle


def test_streaming_drains_at_wire_rate():
    emem = EmulationMemory(total_kb=64)
    dap = DapInterface(emem, bandwidth_mbps=18.0, cpu_frequency_mhz=180,
                       streaming=True)
    # 0.1 bits per cycle -> 160-bit message every 1600 cycles
    for i in range(10):
        emem.store(msg(i))
    for cycle in range(1601):
        dap.tick(cycle)
    assert len(dap.received) == 1
    for cycle in range(1601, 16_500):
        dap.tick(cycle)
    assert len(dap.received) == 10
    assert dap.bits_transferred == 1600


def test_non_streaming_never_drains():
    emem = EmulationMemory(total_kb=64)
    dap = DapInterface(emem, 16.0, 180, streaming=False)
    emem.store(msg(0))
    for cycle in range(10_000):
        dap.tick(cycle)
    assert dap.received == []
    assert emem.message_count == 1


def test_download_all_reports_wire_time():
    emem = EmulationMemory(total_kb=64)
    dap = DapInterface(emem, bandwidth_mbps=10.0, cpu_frequency_mhz=180)
    for i in range(100):
        emem.store(msg(i, bits=100))
    messages, seconds = dap.download_all()
    assert len(messages) == 100
    assert seconds == pytest.approx(100 * 100 / 10e6)
    assert emem.message_count == 0


def test_required_bandwidth():
    emem = EmulationMemory(total_kb=64)
    dap = DapInterface(emem, 16.0, 180)
    # 1.8e6 bits over 180e6 cycles at 180 MHz = 1 second -> 1.8 Mbit/s
    assert dap.required_bandwidth_mbps(1_800_000, 180_000_000) == pytest.approx(1.8)
    assert dap.required_bandwidth_mbps(100, 0) == 0.0


def test_bandwidth_must_be_positive():
    emem = EmulationMemory(total_kb=1)
    with pytest.raises(ValueError):
        DapInterface(emem, 0.0, 180)


def test_reset():
    emem = EmulationMemory(total_kb=64)
    dap = DapInterface(emem, 16.0, 180, streaming=True)
    emem.store(msg(0, bits=8))
    for cycle in range(200):
        dap.tick(cycle)
    assert dap.received
    dap.reset()
    assert dap.received == []
    assert dap.bits_transferred == 0
