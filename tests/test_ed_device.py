"""Emulation Device: topology (Figures 2/4/5), overlay, configs."""

import pytest

from repro.ed.device import (ACCESS_PATHS, EEC_BLOCKS, EdConfig,
                             EmulationDevice, tc1767ed_config,
                             tc1797ed_config)
from repro.soc.memory import map as amap

from tests.helpers import make_loop_program


def test_figure4_eec_blocks_present():
    device = EmulationDevice()
    inventory = device.block_inventory()
    for block in EEC_BLOCKS:
        assert block in inventory


def test_figure2_product_blocks_present():
    device = EmulationDevice()
    inventory = device.block_inventory()
    for block in ("tricore", "pcp", "dma", "pflash", "dspr", "pspr",
                  "lmu", "lmb", "spb", "icache"):
        assert block in inventory


def test_figure4_access_paths():
    device = EmulationDevice()
    paths = device.access_paths()
    assert ("dap", "ecerberus", "bbb", "emem") in paths
    assert ("tricore", "mli_bridge", "bbb", "emem") in paths


def test_ed_configs_match_family():
    tc97 = tc1797ed_config()
    tc67 = tc1767ed_config()
    assert tc97.emem_kb == 512
    assert tc67.emem_kb == 256
    assert tc67.soc.cpu.frequency_mhz < tc97.soc.cpu.frequency_mhz


def test_overlay_requires_reserved_calibration():
    device = EmulationDevice()
    with pytest.raises(ValueError):
        device.map_calibration_overlay(amap.PFLASH_BASE + 0x1000, 0x4000)
    device.reserve_calibration(64)
    device.map_calibration_overlay(amap.PFLASH_BASE + 0x1000, 0x4000)
    assert device.soc.map.classify(amap.PFLASH_BASE + 0x1000) == amap.OVERLAY


def test_overlay_changes_data_timing():
    """Calibration overlay is the one deliberate intrusion of the ED."""
    from repro.soc.cpu import isa
    table = amap.PFLASH_BASE + 0x10_0000

    def run(with_overlay):
        device = EmulationDevice(seed=4)
        if with_overlay:
            device.reserve_calibration(64)
            device.map_calibration_overlay(table, 0x8000)
        device.load_program(make_loop_program(
            alu_per_iter=2,
            load_gen=isa.TableAddr(table, 4, 4096, locality=0.5)))
        device.run(5000)
        return device.cpu.retired

    assert run(True) > run(False)   # overlay RAM faster than flash reads


def test_reset_full_stack():
    device = EmulationDevice()
    device.load_program(make_loop_program())
    device.mcds.add_rate_counter("ipc", ["tc.instr_executed"], 64,
                                 basis="cycles")
    device.run(1000)
    assert device.emem.message_count > 0
    device.reset()
    assert device.cycle == 0
    assert device.emem.message_count == 0
    assert device.mcds.total_messages == 0
    device.run(500)
    assert device.emem.message_count > 0   # still functional after reset
