"""Trace units: program flow compression, data qualification, bus trace."""

import pytest

from repro.ed.device import EdConfig, EmulationDevice
from repro.mcds import messages as msgs
from repro.soc.config import tc1797_config
from repro.soc.cpu import isa
from repro.soc.memory import map as amap
from repro.workloads.program import ProgramBuilder

from tests.helpers import make_loop_program


def make_device(program=None, seed=9):
    device = EmulationDevice(EdConfig(soc=tc1797_config()), seed=seed)
    device.load_program(program if program is not None
                        else make_loop_program(alu_per_iter=4))
    return device


def kinds(device):
    return [m.kind for m in device.emem.contents()]


def test_flow_trace_emits_branch_messages():
    device = make_device()
    ptu = device.mcds.add_program_trace()
    device.run(2000)
    branch_msgs = [m for m in device.emem.contents()
                   if m.kind == msgs.IPT_BRANCH]
    assert branch_msgs
    assert ptu.messages == len(device.emem.contents())
    assert ptu.instructions_traced == device.cpu.retired


def test_flow_trace_compression_beats_cycle_accurate():
    flow_dev = make_device(seed=9)
    flow = flow_dev.mcds.add_program_trace(cycle_accurate=False)
    flow_dev.run(2000)

    ca_dev = make_device(seed=9)
    ca = ca_dev.mcds.add_program_trace(cycle_accurate=True)
    ca_dev.run(2000)

    assert flow.bits_per_instruction < ca.bits_per_instruction
    assert flow.bits_per_instruction < 8.0   # compressed flow trace is cheap


def test_sync_messages_interleaved():
    device = make_device()
    device.mcds.add_program_trace(sync_period=10)
    device.run(3000)
    sync_count = sum(1 for m in device.emem.contents()
                     if m.kind == msgs.IPT_SYNC)
    assert sync_count >= 2


def test_trace_stop_start_qualification():
    device = make_device()
    ptu = device.mcds.add_program_trace()
    device.run(500)
    at_stop = ptu.messages
    ptu.stop()
    device.run(500)
    assert ptu.messages == at_stop
    ptu.start()
    device.run(500)
    assert ptu.messages > at_stop


def test_program_trace_unknown_core_rejected():
    device = make_device()
    with pytest.raises(ValueError):
        device.mcds.add_program_trace(core="gtm")


def test_data_trace_range_qualification():
    program = make_loop_program(
        alu_per_iter=2,
        load_gen=isa.FixedAddr(amap.DSPR_BASE + 0x100),
        store_gen=isa.FixedAddr(amap.LMU_BASE + 0x200))
    device = make_device(program)
    dtu = device.mcds.add_data_trace(
        (amap.DSPR_BASE, amap.DSPR_BASE + 0x1000))
    device.run(1000)
    assert dtu.messages > 0
    traced = [m for m in device.emem.contents() if m.kind == msgs.DATA_ACCESS]
    assert all(amap.DSPR_BASE <= m.address < amap.DSPR_BASE + 0x1000
               for m in traced)


def test_data_trace_writes_only():
    program = make_loop_program(
        alu_per_iter=2,
        load_gen=isa.FixedAddr(amap.DSPR_BASE + 0x100),
        store_gen=isa.FixedAddr(amap.DSPR_BASE + 0x200))
    device = make_device(program)
    dtu = device.mcds.add_data_trace(
        (amap.DSPR_BASE, amap.DSPR_BASE + 0x1000), writes_only=True)
    device.run(500)
    traced = [m for m in device.emem.contents() if m.kind == msgs.DATA_ACCESS]
    assert traced
    assert all(m.extra["write"] for m in traced)


def test_data_trace_master_filter():
    program = make_loop_program(
        alu_per_iter=2, load_gen=isa.FixedAddr(amap.DSPR_BASE + 0x100))
    device = make_device(program)
    dtu = device.mcds.add_data_trace(
        (amap.DSPR_BASE, amap.DSPR_BASE + 0x1000), masters=("dma",))
    device.run(500)
    assert dtu.messages == 0    # only the TriCore touches this range


def test_data_trace_empty_range_rejected():
    device = make_device()
    with pytest.raises(ValueError):
        device.mcds.add_data_trace((amap.DSPR_BASE, amap.DSPR_BASE))


def test_bus_trace_observes_transfers():
    program = make_loop_program(
        alu_per_iter=2, load_gen=isa.FixedAddr(amap.LMU_BASE + 0x100))
    device = make_device(program)
    btu = device.mcds.add_bus_trace("lmb.transfer")
    device.run(500)
    assert btu.messages > 0
    assert any(m.kind == msgs.BUS_XFER for m in device.emem.contents())


def test_trace_fanout_to_multiple_sinks():
    device = make_device()
    ptu1 = device.mcds.add_program_trace()
    ptu2 = device.mcds.add_program_trace()
    device.run(300)
    assert ptu1.messages == ptu2.messages > 0
