"""Deadline propagation (spec → orchestrator → worker) + jitter backoff."""

import time

import pytest

from repro.errors import ConfigurationError
from repro.fleet import CampaignSpec, run_campaign
from repro.fleet.orchestrator import CampaignRunner
from repro.fleet.worker import run_shard

SPEC = {"count": 2, "cycles": 8_000, "seed": 9}


def jobs_of(spec_kwargs):
    return CampaignSpec(**spec_kwargs).build_jobs()


# -- spec validation ----------------------------------------------------------

@pytest.mark.parametrize("bad", [0, -1, float("inf"), float("nan"), "soon"])
def test_spec_rejects_bad_deadlines(bad):
    with pytest.raises(ConfigurationError):
        CampaignSpec(**SPEC, deadline_s=bad)


def test_spec_deadline_roundtrips_but_stays_out_of_payloads():
    spec = CampaignSpec(**SPEC, deadline_s=12.5)
    assert CampaignSpec.from_dict(spec.to_dict()).deadline_s == 12.5
    # absent unless set: pre-deadline spec documents (and any digests
    # computed over them) are byte-for-byte what they always were
    assert "deadline_s" not in CampaignSpec(**SPEC).to_dict()


def test_runner_rejects_nonpositive_deadline():
    with pytest.raises(ConfigurationError, match="deadline_s"):
        CampaignRunner(jobs_of(SPEC), workers=0, deadline_s=0)


# -- orchestrator-level expiry ------------------------------------------------

def test_already_expired_deadline_runs_nothing(tmp_path):
    report = run_campaign(CampaignSpec(**SPEC), workers=0,
                          campaign_dir=str(tmp_path),
                          deadline_s=1e-6)
    assert report.deadline_exceeded
    assert report.records == []
    assert report.quarantined == []           # lateness is not a defect
    assert report.aggregate_path is None      # no partial aggregate


def test_deadline_carried_by_the_spec_itself(tmp_path):
    # the service path: deadline_s rides the spec dict through
    # run_campaign with no explicit runner kwarg
    report = run_campaign(dict(SPEC, deadline_s=1e-6), workers=0,
                          campaign_dir=str(tmp_path))
    assert report.deadline_exceeded and report.records == []


def test_mid_campaign_expiry_keeps_finished_prefix(tmp_path):
    """Expiry at a job boundary: done jobs stay, the rest never run."""
    # cycles sized so one job comfortably outlives the deadline even as
    # the kernel gets faster — expiry must hit a mid-campaign boundary
    spec = CampaignSpec(count=4, cycles=250_000, seed=9)
    t0 = time.time()
    report = run_campaign(spec, workers=0, campaign_dir=str(tmp_path),
                          deadline_s=0.7)
    wall = time.time() - t0
    assert report.deadline_exceeded
    # it actually stopped near the deadline instead of running ~4 jobs
    assert wall < 10.0
    assert len(report.records) < 4
    assert report.aggregate_path is None
    # the store holds exactly the finished prefix — the resume substrate
    assert len(report.ok_records) == len(report.records)


def test_no_deadline_still_completes(tmp_path):
    report = run_campaign(CampaignSpec(**SPEC), workers=0,
                          campaign_dir=str(tmp_path))
    assert not report.deadline_exceeded
    assert report.aggregate_path is not None


# -- worker-level expiry ------------------------------------------------------

def test_run_shard_expires_at_job_boundary():
    jobs = [job.to_dict() for job in jobs_of(SPEC)]
    outcomes = run_shard(jobs, deadline_at=time.time() - 1.0)
    assert len(outcomes) == 1                 # first boundary check fires
    assert outcomes[0]["status"] == "deadline"


def test_run_shard_expires_at_checkpoint_boundary(tmp_path):
    """A deadline passing mid-job stops at the next checkpoint, not at
    the end of the job — bounded overshoot is the checkpoint cadence."""
    jobs = [job.to_dict() for job in jobs_of(
        {"count": 1, "cycles": 200_000, "seed": 9})]
    checkpoint = {"dir": str(tmp_path), "every": 2_000}
    t0 = time.time()
    outcomes = run_shard(jobs, checkpoint=checkpoint,
                         deadline_at=time.time() + 0.2)
    wall = time.time() - t0
    assert outcomes[-1]["status"] == "deadline"
    assert wall < 10.0                        # did not run 200k cycles out


# -- full-jitter retry backoff ------------------------------------------------

def test_backoff_is_deterministic_per_job_matrix():
    a = CampaignRunner(jobs_of(SPEC), workers=0,
                       backoff_s=0.25, max_backoff_s=5.0)
    b = CampaignRunner(jobs_of(SPEC), workers=0,
                       backoff_s=0.25, max_backoff_s=5.0)
    assert [a._backoff_delay(n) for n in range(1, 6)] == \
        [b._backoff_delay(n) for n in range(1, 6)]


def test_backoff_full_jitter_bounds_and_cap():
    runner = CampaignRunner(jobs_of(SPEC), workers=0,
                            backoff_s=0.25, max_backoff_s=2.0)
    for attempt in range(1, 12):
        ceiling = min(2.0, 0.25 * 2 ** (attempt - 1))
        for _ in range(20):
            delay = runner._backoff_delay(attempt)
            assert 0.0 <= delay <= ceiling
    # the exponential ceiling really is hit below the cap...
    runner2 = CampaignRunner(jobs_of(SPEC), workers=0,
                             backoff_s=1.0, max_backoff_s=1000.0)
    assert max(runner2._backoff_delay(8) for _ in range(200)) > 64.0
    # ...and a huge attempt number cannot sleep past the cap
    assert runner2._backoff_delay(60) <= 1000.0


def test_backoff_rejects_negative_cap():
    with pytest.raises(ConfigurationError, match="max_backoff_s"):
        CampaignRunner(jobs_of(SPEC), workers=0, max_backoff_s=-1.0)
