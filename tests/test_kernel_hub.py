"""EventHub: registration, fan-out, oracle totals."""

import pytest

from repro.soc.kernel.hub import EventHub


def test_register_returns_stable_ids():
    hub = EventHub()
    a = hub.register("a")
    b = hub.register("b")
    assert a != b
    assert hub.register("a") == a
    assert hub.signal_id("a") == a
    assert hub.signal_name(b) == "b"


def test_unknown_signal_raises():
    hub = EventHub()
    with pytest.raises(KeyError):
        hub.signal_id("missing")


def test_emit_updates_totals():
    hub = EventHub()
    sid = hub.register("x")
    hub.emit(sid)
    hub.emit(sid, 5)
    assert hub.total("x") == 6


def test_subscribe_receives_counts():
    hub = EventHub()
    sid = hub.register("x")
    seen = []
    hub.subscribe("x", seen.append)
    hub.emit(sid, 3)
    hub.emit(sid)
    assert seen == [3, 1]


def test_multiple_subscribers_all_called():
    hub = EventHub()
    sid = hub.register("x")
    first, second = [], []
    hub.subscribe("x", first.append)
    hub.subscribe("x", second.append)
    hub.emit(sid, 2)
    assert first == [2] and second == [2]


def test_unsubscribe_stops_delivery():
    hub = EventHub()
    sid = hub.register("x")
    seen = []
    hub.subscribe("x", seen.append)
    hub.unsubscribe("x", seen.append)
    hub.emit(sid)
    assert seen == []
    assert hub.total("x") == 1  # oracle still counts


def test_subscribe_registers_if_needed():
    hub = EventHub()
    seen = []
    hub.subscribe("lazy", seen.append)
    hub.emit(hub.signal_id("lazy"), 4)
    assert seen == [4]


def test_snapshot_covers_all_signals():
    hub = EventHub()
    hub.register("a")
    sid = hub.register("b")
    hub.emit(sid, 7)
    snap = hub.snapshot()
    assert snap == {"a": 0, "b": 7}


def test_names_in_registration_order():
    hub = EventHub()
    hub.register("z")
    hub.register("a")
    assert hub.names == ("z", "a")


class _TripwireSubs(list):
    """A subscriber list that fails the test if anyone iterates it."""

    def __iter__(self):
        raise AssertionError("dispatch attempted on a subscriber-free signal")


def test_emit_without_subscribers_skips_dispatch_entirely():
    hub = EventHub()
    sid = hub.register("quiet.signal")
    # empty -> falsy, so the `if subs:` guard must short-circuit before
    # any iteration; a regression that always loops trips the wire
    hub._subs[sid] = _TripwireSubs()
    hub.emit(sid)
    hub.emit(sid, 5)
    assert hub.totals[sid] == 6


def test_unsubscribe_restores_subscriber_free_fast_path():
    hub = EventHub()
    sid = hub.register("transient.signal")
    seen = []
    hub.subscribe("transient.signal", seen.append)
    hub.emit(sid)
    hub.unsubscribe("transient.signal", seen.append)
    hub._subs[sid] = _TripwireSubs(hub._subs[sid])
    hub.emit(sid)
    assert seen == [1]
    assert hub.totals[sid] == 2
