"""Crash-recovery drill: SIGKILL a live campaign, resume, compare bytes.

This is the end-to-end robustness claim, exercised with a real process
kill rather than an injected exception: a campaign is SIGKILLed while a
job is mid-run with checkpoints on disk, then re-run with ``resume=True``
in the same campaign directory.  The resumed campaign must replay the
completed records from the (crash-consistent) JSONL store, resume the
interrupted job from its last checkpoint, and write an ``aggregate.json``
byte-identical to an uninterrupted run's.  The CI crash-recovery lane
runs exactly this file.
"""

import glob
import json
import os
import signal
import subprocess
import sys
import time

from repro.fleet import CampaignJob, run_campaign

CYCLES = 60_000
CHECKPOINT_EVERY = 5_000

#: the same matrix on both sides of the kill — and in the child process
JOB_SPECS = [
    {"name": "engine-a", "domain": "engine", "device": "tc1797",
     "cycles": CYCLES, "seed": 2008},
    {"name": "body-b", "domain": "body", "device": "tc1797",
     "cycles": CYCLES, "seed": 2008},
]

CHILD_SCRIPT = """
import json, sys
from repro.fleet import CampaignJob, run_campaign
specs = json.loads(sys.argv[1])
report = run_campaign([CampaignJob(**spec) for spec in specs],
                      workers=0, campaign_dir=sys.argv[2],
                      checkpoint_every={every}, resume=True)
print(report.metrics.checkpoint_resumes, report.metrics.resumed)
""".format(every=CHECKPOINT_EVERY)


def _jobs():
    return [CampaignJob(**spec) for spec in JOB_SPECS]


def _spawn(campaign_dir):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) \
        + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-c", CHILD_SCRIPT, json.dumps(JOB_SPECS),
         campaign_dir],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE)


def _wait_for_checkpoint(campaign_dir, timeout_s=180.0):
    """Block until the running campaign has a mid-run checkpoint on disk."""
    deadline = time.monotonic() + timeout_s
    pattern = os.path.join(campaign_dir, "checkpoints", "*.ckpt")
    while time.monotonic() < deadline:
        found = glob.glob(pattern)
        if found:
            return found
        time.sleep(0.01)
    raise AssertionError("no checkpoint appeared before the timeout")


def test_sigkill_resume_aggregate_is_byte_identical(tmp_path):
    control_dir = str(tmp_path / "control")
    crash_dir = str(tmp_path / "crash")

    control = run_campaign(_jobs(), workers=0, campaign_dir=control_dir)
    with open(control.aggregate_path, "rb") as handle:
        control_bytes = handle.read()

    # fly the campaign in a separate process and shoot it down mid-job
    victim = _spawn(crash_dir)
    try:
        _wait_for_checkpoint(crash_dir)
    finally:
        if victim.poll() is None:
            victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=60)
    assert victim.returncode == -signal.SIGKILL

    # what the kill left behind: no aggregate, but a checkpoint to resume
    assert not os.path.exists(os.path.join(crash_dir, "aggregate.json"))

    # resume in the same directory: replay finished records, resume the
    # interrupted job from its checkpoint, finish the rest
    resumed = run_campaign(_jobs(), workers=0, campaign_dir=crash_dir,
                           checkpoint_every=CHECKPOINT_EVERY, resume=True)
    recovered = (resumed.metrics.checkpoint_resumes
                 + resumed.metrics.resumed)
    assert recovered >= 1, "the resumed campaign recovered no prior work"
    assert resumed.metrics.quarantined == 0

    with open(resumed.aggregate_path, "rb") as handle:
        assert handle.read() == control_bytes

    # second resume in the same dir is a pure replay: zero execution
    replay = run_campaign(_jobs(), workers=0, campaign_dir=crash_dir,
                          checkpoint_every=CHECKPOINT_EVERY, resume=True)
    assert replay.metrics.executed == 0
    assert replay.metrics.resumed == len(JOB_SPECS)
    with open(replay.aggregate_path, "rb") as handle:
        assert handle.read() == control_bytes
