"""Batch-lane backend: grouping, fallbacks, payload identity, numpy guard.

The backend's contract (docs/batch.md) in unit-test form:

* ``group_key`` partitions jobs by exactly the fields that shape the
  simulated SoC and the measurement grid — never by customer program;
* an ``"ok"`` payload from the lanes is byte-identical (canonical JSON)
  to the scalar worker's payload for the same job;
* anything the lanes cannot model — fault drills, mixed configurations —
  refuses loudly or falls back to the scalar path with unchanged
  semantics, never silently diverges;
* numpy is an optional extra: without it the scalar path still works and
  the batch backend fails at admission with an actionable message.
"""

import os
import subprocess
import sys

import pytest

import repro
from repro.batch import (HAVE_NUMPY, BatchUnsupported, LaneSimulator,
                         group_key, run_lane_group)
from repro.errors import ConfigurationError
from repro.fleet import CampaignJob, CampaignSpec, run_campaign
from repro.fleet.spec import canonical_json
from repro.fleet.worker import run_batch_shard, run_shard

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY,
                                 reason="numpy extra not installed")

CYCLES = 6_000
SEED = 7


def job(name, domain="engine", **overrides):
    base = dict(name=name, domain=domain, device="tc1797", params={},
                cycles=CYCLES, seed=SEED)
    base.update(overrides)
    return CampaignJob(**base).to_dict()


# -- group_key ---------------------------------------------------------------

def test_group_key_ignores_customer_program():
    # different customers, same SoC + measurement grid: one lane group
    assert group_key(job("a")) == group_key(job("b"))
    assert group_key(job("a")) == group_key(
        job("c", domain="transmission", params={"load": 3}))


@pytest.mark.parametrize("field,value", [
    ("device", "tc1767"),
    ("cycles", CYCLES + 1),
    ("seed", SEED + 1),
    ("ipc_resolution", 128),
    ("rate_per", 50),
])
def test_group_key_splits_on_config_fields(field, value):
    assert group_key(job("a")) != group_key(job("a", **{field: value}))


# -- payload identity --------------------------------------------------------

@needs_numpy
def test_lane_payloads_byte_identical_to_scalar():
    jobs = [job("alpha"), job("beta", domain="transmission"),
            job("gamma", params={"injectors": 6})]
    scalar = run_shard([dict(j) for j in jobs])
    assert all(o["status"] == "ok" for o in scalar)
    payloads = run_lane_group(jobs)
    assert len(payloads) == len(scalar)
    for batch_payload, outcome in zip(payloads, scalar):
        assert canonical_json(batch_payload) == \
            canonical_json(outcome["payload"])


@needs_numpy
def test_lane_simulator_masks_and_strides():
    jobs = [job("a", cycles=5_000), job("b", cycles=5_000)]
    lanes = LaneSimulator(jobs, stride=2_000)
    assert lanes.lanes == 2
    assert list(lanes.active_mask()) == [True, True]
    assert lanes.sweep() == 2           # 2000 of 5000 cycles consumed
    assert list(lanes.remaining) == [3_000, 3_000]
    lanes.run()                         # drains both lanes
    assert list(lanes.active_mask()) == [False, False]
    for lane in range(lanes.lanes):
        assert lanes.devices[lane].cycle - lanes.start_cycles[lane] == 5_000


# -- refusals and fallbacks --------------------------------------------------

@needs_numpy
def test_lane_simulator_rejects_mixed_groups():
    with pytest.raises(ConfigurationError, match="incompatible"):
        LaneSimulator([job("a"), job("b", seed=SEED + 1)])


@needs_numpy
def test_fault_drill_is_batch_unsupported():
    with pytest.raises(BatchUnsupported, match="fault drill"):
        run_lane_group([job("a"), job("drill", fault="crash")])


@needs_numpy
def test_run_batch_shard_matches_scalar_outcomes():
    # two lane groups (different seeds) plus a fault job that forces the
    # scalar fallback for its whole group
    jobs = [job("a1"), job("a2", domain="transmission"),
            job("b1", seed=SEED + 1), job("drill", fault="crash")]
    batch = run_batch_shard([dict(j) for j in jobs])
    scalar = run_shard([dict(j) for j in jobs])
    by_name = {o["job"]["name"]: o for o in scalar}
    assert len(batch) == len(scalar)
    for outcome in batch:
        reference = by_name[outcome["job"]["name"]]
        assert outcome["status"] == reference["status"]
        if outcome["status"] == "ok":
            assert canonical_json(outcome["payload"]) == \
                canonical_json(reference["payload"])
        else:
            assert outcome["error"] == reference["error"]


@needs_numpy
def test_run_batch_shard_preempts_at_group_boundary():
    outcomes = run_batch_shard([job("a"), job("b")],
                               should_yield=lambda: True)
    assert [o["status"] for o in outcomes] == ["preempted"]


# -- CampaignSpec / runner wiring --------------------------------------------

def test_campaign_spec_rejects_unknown_backend():
    with pytest.raises(ConfigurationError, match="unknown backend"):
        CampaignSpec(count=1, backend="gpu")


def test_campaign_spec_backend_never_feeds_spec_documents():
    # scalar (the default) must leave pre-backend spec documents — and
    # their client-side digests — byte-for-byte unchanged
    assert "backend" not in CampaignSpec(count=1).to_dict()
    body = CampaignSpec(count=1, backend="batch").to_dict()
    assert body["backend"] == "batch"
    assert CampaignSpec.from_dict(body).backend == "batch"


@needs_numpy
def test_campaign_backend_batch_aggregate_byte_identical(tmp_path):
    spec = {"count": 3, "cycles": 4_000, "seed": 11}
    scalar = run_campaign(dict(spec), workers=0,
                          campaign_dir=str(tmp_path / "scalar"))
    batch = run_campaign(dict(spec, backend="batch"), workers=0,
                         campaign_dir=str(tmp_path / "batch"))
    with open(scalar.aggregate_path, "rb") as a, \
            open(batch.aggregate_path, "rb") as b:
        assert a.read() == b.read()


# -- numpy optional extra (the import guard) ---------------------------------

GUARD_SCRIPT = r"""
import sys


class BlockNumpy:
    def find_spec(self, name, path=None, target=None):
        if name == "numpy" or name.startswith("numpy."):
            raise ImportError("numpy is blocked for this test")
        return None


sys.meta_path.insert(0, BlockNumpy())
for mod in list(sys.modules):
    if mod == "numpy" or mod.startswith("numpy."):
        del sys.modules[mod]

import repro.batch as batch
assert batch.HAVE_NUMPY is False

from repro.errors import ConfigurationError

try:
    batch.require_numpy()
except ConfigurationError as exc:
    assert "repro[batch]" in str(exc), str(exc)
else:
    raise AssertionError("require_numpy did not raise")

# the scalar path never needs numpy: a worker job runs end to end
from repro.fleet import CampaignJob, CampaignRunner
from repro.fleet.worker import run_shard

job = CampaignJob(name="a", domain="engine", device="tc1797",
                  params={}, cycles=2_000, seed=7).to_dict()
(outcome,) = run_shard([job])
assert outcome["status"] == "ok", outcome

# asking for the batch backend fails at admission, actionably
try:
    CampaignRunner([CampaignJob.from_dict(job)], backend="batch")
except ConfigurationError as exc:
    assert "repro[batch]" in str(exc), str(exc)
else:
    raise AssertionError("batch backend admitted without numpy")
print("GUARD-OK")
"""


def test_scalar_path_works_without_numpy():
    """Subprocess with numpy import-blocked: scalar ok, batch actionable."""
    src_root = os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run([sys.executable, "-c", GUARD_SCRIPT], env=env,
                          capture_output=True, text=True, timeout=180)
    assert proc.returncode == 0, proc.stderr
    assert "GUARD-OK" in proc.stdout
