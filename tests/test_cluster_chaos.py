"""Cluster chaos drill: SIGKILL a worker node mid-campaign.

The whole point of the cluster layer, asserted end to end with *real
processes*: two ``repro node`` workers share a directory; one is
SIGKILLed while it holds a batch lease.  The survivor must observe the
lease expire, take the batch over (a journaled ``takeover``), resume
the victim's half-finished job from its shared checkpoint, and finalize
an ``aggregate.json`` byte-identical to an undisturbed single-node run.

This is also the test the ``cluster-chaos`` CI lane runs.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.cluster import submit
from repro.cluster.coordinator import CLUSTER_JOURNAL_NAME
from repro.cluster.lease import LEASE_DIR, LEASE_SUFFIX
from repro.cluster.local import node_command
from repro.fleet.api import run_campaign
from repro.fleet.spec import CampaignJob
from repro.fleet.store import unseal_record
from repro.resilience.journal import AdmissionJournal

CYCLES = 60_000          # long enough that a node dies mid-batch
EVERY = 1_000            # checkpoint cadence = heartbeat cadence
TTL_S = 1.0              # short lease so migration happens quickly
DRILL_TIMEOUT_S = 240.0


def make_jobs():
    return [CampaignJob(name=f"c{i}", domain="engine", device="tc1797",
                        params={}, cycles=CYCLES, seed=7)
            for i in range(4)]


def _spawn(cluster_dir, node_id):
    env = dict(os.environ)
    src = os.path.abspath(os.path.join(os.path.dirname(__file__), "..",
                                       "src"))
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        node_command(cluster_dir, node_id, TTL_S), env=env,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)


def _wait_for_lease_held_by(cluster_dir, node_id, deadline):
    """Block until ``node_id`` holds a batch lease; returns its resource."""
    lease_dir = os.path.join(cluster_dir, LEASE_DIR)
    while time.time() < deadline:
        if os.path.isdir(lease_dir):
            for name in sorted(os.listdir(lease_dir)):
                if not name.endswith(LEASE_SUFFIX) or \
                        not name.startswith("batch-"):
                    continue
                try:
                    with open(os.path.join(lease_dir, name)) as handle:
                        record = unseal_record(handle.read().strip())
                except (ValueError, OSError):
                    continue
                if record.get("node") == node_id:
                    return record["resource"]
        time.sleep(0.02)
    raise AssertionError(
        f"node {node_id} never claimed a batch within the drill timeout")


@pytest.mark.slow
def test_sigkill_mid_campaign_migrates_and_stays_byte_identical(tmp_path):
    jobs = make_jobs()
    cluster_dir = str(tmp_path / "cluster")
    submit(cluster_dir, jobs, batches=2, checkpoint_every=EVERY,
           max_retries=1)
    deadline = time.time() + DRILL_TIMEOUT_S

    victim = _spawn(cluster_dir, "victim")
    survivor = _spawn(cluster_dir, "survivor")
    try:
        # kill the victim the moment it owns a batch — mid-campaign, with
        # unfinished jobs behind its lease
        batch = _wait_for_lease_held_by(cluster_dir, "victim", deadline)
        # give it a beat so at least one checkpoint chunk has run
        time.sleep(0.3)
        os.kill(victim.pid, signal.SIGKILL)
        assert victim.wait(timeout=10) == -signal.SIGKILL

        # the survivor must finish the whole campaign alone
        remaining = max(1.0, deadline - time.time())
        assert survivor.wait(timeout=remaining) == 0
    finally:
        for proc in (victim, survivor):
            if proc.poll() is None:
                proc.kill()

    # 1. completion: the campaign finalized despite the node death
    aggregate_path = os.path.join(cluster_dir, "aggregate.json")
    assert os.path.exists(aggregate_path)
    assert os.path.exists(os.path.join(cluster_dir, "final.json"))

    # 2. migration: the survivor took over the victim's expired lease
    journal = AdmissionJournal(cluster_dir, name=CLUSTER_JOURNAL_NAME)
    takeovers = [r for r in journal.replay()
                 if r["op"] == "takeover"
                 and r.get("previous_node") == "victim"]
    assert takeovers, "survivor never migrated the victim's batch"
    assert any(r["resource"] == batch for r in takeovers)

    # 3. byte-identity: aggregate == an undisturbed single-node run's
    ref = run_campaign(jobs, workers=0,
                       campaign_dir=str(tmp_path / "single"),
                       checkpoint_every=EVERY)
    with open(aggregate_path, "rb") as handle:
        cluster_bytes = handle.read()
    with open(ref.aggregate_path, "rb") as handle:
        assert handle.read() == cluster_bytes

    # 4. no double completion: one committed record per job id
    with open(aggregate_path) as handle:
        aggregate = json.load(handle)
    ids = [entry["job_id"] for entry in aggregate["jobs"]]
    assert len(ids) == len(set(ids)) == 4


@pytest.mark.slow
def test_stop_file_halts_nodes_at_safe_boundaries(tmp_path):
    """A STOP request must end every node promptly with checkpoints (and
    committed records) intact — the cooperative-preemption path."""
    from repro.cluster import request_stop
    from repro.cluster.local import fold_report
    jobs = make_jobs()
    cluster_dir = str(tmp_path / "cluster")
    submit(cluster_dir, jobs, batches=2, checkpoint_every=EVERY,
           max_retries=1)
    deadline = time.time() + DRILL_TIMEOUT_S
    node = _spawn(cluster_dir, "n1")
    try:
        _wait_for_lease_held_by(cluster_dir, "n1", deadline)
        time.sleep(0.2)                # let some checkpoints land
        request_stop(cluster_dir)
        assert node.wait(timeout=60) == 0      # stopped is a clean exit
    finally:
        if node.poll() is None:
            node.kill()
    report = fold_report(cluster_dir, nodes=1)
    assert report.preempted and report.aggregate_path is None
    # whatever was mid-flight left a resumable checkpoint behind
    checkpoints = os.listdir(os.path.join(cluster_dir, "checkpoints"))
    committed = len(report.records)
    assert committed < 4 or not checkpoints
