"""Crossbar interconnect: per-target lanes vs the shared LMB."""

import pytest

from repro.core.optimization import hardware_options
from repro.soc.bus.layers import CrossbarBus
from repro.soc.config import tc1797_config
from repro.soc.device import Soc
from repro.soc.dma.controller import DmaChannelConfig
from repro.soc.kernel import signals
from repro.soc.kernel.hub import EventHub
from repro.soc.cpu import isa
from repro.soc.memory import map as amap
from repro.workloads.program import ProgramBuilder


def test_different_targets_do_not_contend():
    hub = EventHub()
    xbar = CrossbarBus("lmb", hub, occupancy=4, latency=4,
                       transfer_signal="lmb.transfer",
                       contention_signal="lmb.contention")
    xbar.transfer(0, "dma", target="emem")
    wait, _ = xbar.transfer(0, "tc", target="lmu")
    assert wait == 0
    assert hub.total("lmb.contention") == 0


def test_same_target_still_serialises():
    hub = EventHub()
    xbar = CrossbarBus("lmb", hub, occupancy=4, latency=4,
                       transfer_signal="lmb.transfer",
                       contention_signal="lmb.contention")
    xbar.transfer(0, "dma", target="lmu")
    wait, _ = xbar.transfer(1, "tc", target="lmu")
    assert wait == 3
    assert xbar.total_contention == 3
    assert xbar.total_transfers == 2


def test_aggregate_stats_merge_lanes():
    hub = EventHub()
    xbar = CrossbarBus("lmb", hub, 1, 1, "x", "c")
    xbar.transfer(0, "tc", target="a")
    xbar.transfer(0, "tc", target="b")
    assert xbar.per_master_grants == {"tc": 2}
    xbar.reset()
    assert xbar.total_transfers == 0


def _contention_soc(crossbar: bool):
    """CPU polls the LMU while DMA streams into the EMEM region."""
    cfg = tc1797_config()
    cfg.bus.lmb_crossbar = crossbar
    cfg.bus.lmb_occupancy = 3          # make arbitration visible
    soc = Soc(cfg, seed=63)
    builder = ProgramBuilder(code_base=amap.PSPR_BASE)
    main = builder.function("main")
    top = main.label("top")
    main.load(isa.FixedAddr(amap.LMU_BASE + 0x100))
    main.alu(1)
    main.jump(top)
    soc.load_program(builder.assemble())
    soc.dma.configure_channel(0, DmaChannelConfig(
        src=amap.DSPR_BASE + 0x200, dst=amap.EMEM_BASE + 0x100, moves=200))
    soc._ensure_order()
    soc.dma.trigger(0)
    soc.run(2000)
    return soc


def test_crossbar_removes_cross_target_contention():
    shared = _contention_soc(crossbar=False)
    xbar = _contention_soc(crossbar=True)
    assert shared.hub.total(signals.LMB_CONTENTION) > 0
    assert (xbar.hub.total(signals.LMB_CONTENTION)
            < shared.hub.total(signals.LMB_CONTENTION))
    assert xbar.cpu.retired >= shared.cpu.retired


def test_crossbar_option_in_catalog():
    options = {o.key: o for o in hardware_options()}
    assert "lmb_xbar" in options
    cfg = tc1797_config()
    options["lmb_xbar"].apply(cfg, {})
    assert cfg.bus.lmb_crossbar
