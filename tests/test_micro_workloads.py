"""Micro-kernels: closed-form substrate timing checks.

Each kernel stresses one mechanism; its throughput has a predictable
closed form, so these tests pin the simulator's timing semantics.
"""

import pytest

from repro.soc.config import tc1797_config
from repro.soc.device import Soc
from repro.soc.kernel import signals
from repro.workloads import micro


def run(program, cycles=20_000, config=None, seed=18):
    soc = Soc(config if config is not None else tc1797_config(), seed=seed)
    soc.load_program(program)
    soc.run(cycles)
    return soc


def test_alu_kernel_one_per_cycle():
    soc = run(micro.alu_kernel(width=64))
    # width alu + jump per iteration, penalty on the jump
    cfg = soc.config.cpu
    per_iter = 64 + cfg.branch_penalty   # 63 alu cycles + alu/jump pair + refill
    ipc_expected = 65 / per_iter
    assert soc.ipc() == pytest.approx(ipc_expected, rel=0.05)


def test_dual_issue_kernel_near_two():
    soc = run(micro.dual_issue_kernel(pairs=32))
    assert soc.ipc() > 1.6


def test_flash_stream_benefits_from_buffer():
    soc = run(micro.flash_stream_kernel(stride=4, footprint_kb=64))
    counts = soc.oracle()
    # 8 sequential words per 32-byte line: 7 of 8 reads hit the buffer
    hits = counts[signals.PFLASH_BUF_HIT_DATA]
    accesses = counts[signals.PFLASH_DATA_ACCESS]
    assert hits / accesses == pytest.approx(7 / 8, abs=0.02)


def test_flash_random_never_hits_buffer():
    soc = run(micro.flash_random_kernel(footprint_kb=1024))
    counts = soc.oracle()
    hit_rate = (counts[signals.PFLASH_BUF_HIT_DATA]
                / max(1, counts[signals.PFLASH_DATA_ACCESS]))
    assert hit_rate < 0.02


def test_icache_thrash_kernel_misses():
    cfg = tc1797_config()
    soc = run(micro.icache_thrash_kernel(footprint_kb=24), cycles=60_000,
              config=cfg)
    counts = soc.oracle()
    miss_rate = counts[signals.ICACHE_MISS] / counts[signals.ICACHE_ACCESS]
    assert miss_rate > 0.9        # cyclic walk > capacity with LRU


def test_icache_fit_kernel_hits():
    soc = run(micro.icache_thrash_kernel(footprint_kb=8), cycles=60_000)
    counts = soc.oracle()
    miss_rate = counts[signals.ICACHE_MISS] / counts[signals.ICACHE_ACCESS]
    assert miss_rate < 0.05       # fits in 16 KB


def test_branchy_kernel_pays_refills():
    taken = run(micro.branchy_kernel(taken_probability=1.0), seed=18)
    never = run(micro.branchy_kernel(taken_probability=0.0), seed=18)
    assert never.ipc() > taken.ipc()


def test_peripheral_poll_dominated_by_spb_latency():
    soc = run(micro.peripheral_poll_kernel())
    cfg = soc.config
    # each iteration ~ spb latency + a couple of issue cycles
    per_iter = cfg.bus.spb_latency + 1 + cfg.cpu.branch_penalty
    expected_ipc = 3 / per_iter
    assert soc.ipc() == pytest.approx(expected_ipc, rel=0.25)
