"""AdmissionJournal: durable append, torn-tail replay, fold, compaction."""

import json

import pytest

from repro.fleet.store import seal_record, unseal_record
from repro.resilience import (AdmissionJournal, JournalState,
                              compaction_records, fold_journal)

SPEC = {"count": 2, "cycles": 8_000, "seed": 9}


def test_append_replay_roundtrip(tmp_path):
    journal = AdmissionJournal(str(tmp_path))
    journal.admit("cmp-000001", "t1", 0, SPEC, idempotency_key="k1")
    journal.state("cmp-000001", "running", attempts=1)
    journal.state("cmp-000001", "completed", attempts=1)
    records = journal.replay()
    assert [r["op"] for r in records] == ["admit", "state", "state"]
    assert records[0]["spec"] == SPEC
    assert records[0]["idempotency_key"] == "k1"
    # the on-disk lines carry the store-format CRC seal
    with open(journal.path) as handle:
        for line in handle:
            assert "_crc32" in json.loads(line)
            unseal_record(line)          # raises if the seal is wrong


def test_replay_skips_torn_tail_without_losing_prefix(tmp_path):
    journal = AdmissionJournal(str(tmp_path))
    journal.admit("cmp-000001", "t1", 0, SPEC)
    journal.state("cmp-000001", "running", attempts=1)
    # simulate SIGKILL mid-append: an unterminated fragment at the end
    with open(journal.path, "a") as handle:
        handle.write(seal_record({"op": "state",
                                  "campaign_id": "cmp-000001",
                                  "state": "completed"})[:17])
    with pytest.warns(RuntimeWarning, match="torn tail"):
        records = journal.replay()
    assert [r["op"] for r in records] == ["admit", "state"]
    state = fold_journal(records)
    # the interrupted transition never took effect: still running
    assert state.campaigns["cmp-000001"].state == "running"


def test_replay_skips_damaged_line_and_fold_drops_orphans(tmp_path):
    journal = AdmissionJournal(str(tmp_path))
    journal.admit("cmp-000001", "t1", 0, SPEC)
    journal.admit("cmp-000002", "t2", 1, SPEC)
    journal.state("cmp-000002", "running", attempts=1)
    lines = open(journal.path).read().splitlines()
    # corrupt campaign 2's admit line (bit flip), keep its state line
    lines[1] = lines[1].replace("t2", "tX")
    with open(journal.path, "w") as handle:
        handle.write("\n".join(lines) + "\n")
    with pytest.warns(RuntimeWarning, match="damaged"):
        records = journal.replay()
    state = fold_journal(records)
    # the orphaned state transition cannot be re-queued: dropped
    assert sorted(state.campaigns) == ["cmp-000001"]


def test_fold_latest_state_wins_and_tracks_seq(tmp_path):
    journal = AdmissionJournal(str(tmp_path))
    journal.admit("cmp-000003", "t1", 0, SPEC, deadline_at=123.5)
    journal.state("cmp-000003", "running", attempts=1)
    journal.state("cmp-000003", "queued", attempts=1)    # evicted
    journal.state("cmp-000003", "running", attempts=2)
    state = fold_journal(journal.replay())
    entry = state.campaigns["cmp-000003"]
    assert entry.state == "running" and entry.attempts == 2
    assert entry.deadline_at == 123.5
    assert state.max_seq == 3


def test_idempotency_map_is_per_tenant(tmp_path):
    journal = AdmissionJournal(str(tmp_path))
    journal.admit("cmp-000001", "t1", 0, SPEC, idempotency_key="same")
    journal.admit("cmp-000002", "t2", 0, SPEC, idempotency_key="same")
    state = fold_journal(journal.replay())
    assert state.idempotency[("t1", "same")] == "cmp-000001"
    assert state.idempotency[("t2", "same")] == "cmp-000002"


def test_compaction_folds_back_identically(tmp_path):
    journal = AdmissionJournal(str(tmp_path))
    journal.admit("cmp-000001", "t1", 0, SPEC, idempotency_key="k")
    for state_name in ("running", "queued", "running", "completed"):
        journal.state("cmp-000001", state_name, attempts=2)
    journal.admit("cmp-000002", "t2", 3, SPEC)
    before = fold_journal(journal.replay())

    journal.rewrite(compaction_records(before))
    after = fold_journal(journal.replay())

    assert after.campaigns.keys() == before.campaigns.keys()
    for cid, entry in before.campaigns.items():
        compacted = after.campaigns[cid]
        assert (compacted.state, compacted.attempts,
                compacted.tenant, compacted.priority,
                compacted.idempotency_key) == \
            (entry.state, entry.attempts, entry.tenant,
             entry.priority, entry.idempotency_key)
    assert after.idempotency == before.idempotency
    assert after.max_seq == before.max_seq
    # and it is actually smaller: one admit + one state, one admit
    assert len(journal.replay()) == 3


def test_compaction_preserves_admission_order(tmp_path):
    state = JournalState()
    journal = AdmissionJournal(str(tmp_path))
    for i in (2, 1, 3):
        journal.admit(f"cmp-{i:06d}", "t", 0, SPEC)
    state = fold_journal(journal.replay())
    admits = [r["campaign_id"] for r in compaction_records(state)
              if r["op"] == "admit"]
    assert admits == ["cmp-000002", "cmp-000001", "cmp-000003"]


def test_replay_missing_file_is_empty(tmp_path):
    assert AdmissionJournal(str(tmp_path)).replay() == []
