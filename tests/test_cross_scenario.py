"""Cross-scenario robustness: the methodology runs on every workload."""

import pytest

from repro.core.optimization import OptionEvaluator, hardware_options
from repro.core.profiling import ProfilingSession, StreamingSession, spec
from repro.ed.device import EdConfig
from repro.mcds.latency import LatencyProbe
from repro.soc.config import tc1797_config
from repro.soc.interrupts.icu import srn_raised_signal, srn_taken_signal
from repro.workloads import (BodyGatewayScenario, EngineControlScenario,
                             RtosScenario, TransmissionScenario)

ALL_SCENARIOS = [EngineControlScenario, TransmissionScenario,
                 BodyGatewayScenario, RtosScenario]


@pytest.mark.parametrize("scenario_cls", ALL_SCENARIOS)
def test_profiling_session_on_every_scenario(scenario_cls):
    device = scenario_cls().build(tc1797_config(), {}, seed=62)
    session = ProfilingSession(device, spec.engine_parameter_set())
    result = session.run(80_000)
    assert result.mean_rate("tc.ipc") > 0.3
    assert len(result["icache.miss_rate"]) > 0


@pytest.mark.parametrize("scenario_cls", [RtosScenario, BodyGatewayScenario])
def test_option_evaluation_on_non_engine_scenarios(scenario_cls):
    options = [o for o in hardware_options()
               if o.key in ("icache_x2", "flash_25ns")]
    evaluator = OptionEvaluator(scenario_cls(), tc1797_config(), options,
                                work_instructions=40_000, seed=62)
    results = evaluator.evaluate()
    assert len(results) == 2
    for result in results:
        assert 0.9 < result.measured_speedup < 1.5
        assert result.predicted_speedup >= 1.0


def test_os_tick_jitter_measurable():
    """OS-tick service latency: the RTOS integrator's first question."""
    device = RtosScenario().build(tc1797_config(), {"tick_us": 50}, seed=62)
    probe = LatencyProbe(device.hub, srn_raised_signal("os_tick"),
                         srn_taken_signal("os_tick"))
    device.run(400_000)
    assert probe.count >= 30
    # tick priority beats the CAN ISR, so jitter stays near pipeline drain;
    # occasional long task bodies defer entry by at most their length
    assert probe.percentile(95) < 2000
    assert probe.min() >= 0


def test_streaming_on_engine_scenario_override():
    """The ED-config override path builds a streaming-capable device."""
    streaming = EngineControlScenario(
        ed_config_overrides={"dap_streaming": True})
    device = streaming.build(tc1797_config(), {}, seed=62)
    session = StreamingSession(device, [spec.ipc(resolution=2048)])
    stats = session.run(60_000)
    assert stats.messages_received > 0
    assert stats.healthy
