"""Peripheral models: timers, ADC, CAN arrivals."""

import pytest

from repro.soc.config import tc1797_config
from repro.soc.device import Soc
from repro.soc.kernel import signals
from repro.soc.memory import map as amap
from repro.soc.peripherals.basic import Adc, CanNode, PeriodicTimer
from repro.workloads.program import ProgramBuilder


def make_soc():
    soc = Soc(tc1797_config(), seed=21)
    builder = ProgramBuilder(code_base=amap.PSPR_BASE)
    builder.function("main").halt()
    soc.load_program(builder.assemble())
    return soc


def test_timer_period():
    soc = make_soc()
    srn = soc.icu.add_srn("t", 5)
    timer = soc.add_peripheral(
        PeriodicTimer("t", soc.hub, soc.icu, srn.id, 100))
    soc.run(1000)
    # first event after one full period: fires at 100, 200, ... 900
    assert timer.events == 9
    assert srn.raised_count == 9


def test_timer_callable_period():
    soc = make_soc()
    srn = soc.icu.add_srn("t", 5)
    # period shrinks over time (rising RPM)
    timer = soc.add_peripheral(PeriodicTimer(
        "t", soc.hub, soc.icu, srn.id,
        period=lambda cycle: 200 if cycle < 1000 else 100))
    soc.run(2000)
    assert 13 <= timer.events <= 17


def test_timer_rejects_bad_period():
    soc = make_soc()
    srn = soc.icu.add_srn("t", 5)
    with pytest.raises(ValueError):
        PeriodicTimer("t", soc.hub, soc.icu, srn.id, 0)


def test_adc_conversion_delay():
    soc = make_soc()
    srn = soc.icu.add_srn("adc", 5)
    adc = soc.add_peripheral(Adc("adc", soc.hub, soc.icu, srn.id,
                                 scan_period=300, conversion_cycles=100))
    soc.run(300)
    assert adc.conversions == 0      # first conversion still in flight
    soc.run(150)
    assert adc.conversions == 1
    soc.run(2000)
    assert adc.conversions >= 6
    assert soc.hub.total(signals.ADC_CONVERSION) == adc.conversions


def test_can_arrivals_deterministic_per_seed():
    def run(seed):
        soc = Soc(tc1797_config(), seed=seed)
        builder = ProgramBuilder(code_base=amap.PSPR_BASE)
        builder.function("main").halt()
        soc.load_program(builder.assemble())
        srn = soc.icu.add_srn("can", 5)
        can = soc.add_peripheral(CanNode("can", soc.hub, soc.icu, srn.id,
                                         mean_period=500,
                                         rng=soc.sim.rng("can")))
        soc.run(20000)
        return can.messages
    assert run(1) == run(1)


def test_can_respects_min_period():
    soc = make_soc()
    srn = soc.icu.add_srn("can", 5)
    can = soc.add_peripheral(CanNode("can", soc.hub, soc.icu, srn.id,
                                     mean_period=10, min_period=100,
                                     rng=soc.sim.rng("can")))
    soc.run(1000)
    assert can.messages <= 10


def test_can_mean_rate_plausible():
    soc = make_soc()
    srn = soc.icu.add_srn("can", 5)
    can = soc.add_peripheral(CanNode("can", soc.hub, soc.icu, srn.id,
                                     mean_period=1000, min_period=10,
                                     rng=soc.sim.rng("can")))
    soc.run(100_000)
    assert 60 <= can.messages <= 140
