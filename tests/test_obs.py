"""Telemetry layer: registry export formats, tracer determinism, hooks.

The acceptance properties of ``repro.obs``:

* the Chrome trace export is valid trace-event JSON — metadata first,
  timestamps monotonic, pid/tid lanes named through the metadata events;
* the Prometheus text export parses line-by-line, escapes label values,
  and renders histograms as cumulative buckets with ``+Inf``/sum/count;
* installing telemetry never changes simulation results: a campaign's
  payloads and aggregate are byte-identical with telemetry on or off;
* ``Soc.reset`` reseeds span ids and rebases the timeline, so repeated
  runs in one process produce identical traces under a fake clock;
* every hook site (kernel advance, gap, fault, watchdog, trigger, cache,
  fleet) lands in the registry and on the timeline.
"""

import itertools
import json
import re

import pytest

from repro.errors import ConfigurationError, WatchdogExpired
from repro.faults import FaultInjector, FaultPlan, SimulationWatchdog
from repro.fleet import CampaignRunner, build_matrix
from repro.obs import (EventLog, MetricsRegistry, SpanTracer, Telemetry,
                       active, bridge, escape_label_value, telemetry)
from repro.soc.config import tc1797_config
from repro.soc.device import Soc
from repro.workloads import CustomerGenerator, EngineControlScenario

from tests.helpers import make_loop_program


def fake_clock(step=0.001):
    """Deterministic clock: 0, step, 2*step, ... seconds."""
    counter = itertools.count()
    return lambda: next(counter) * step


# --- metrics registry -------------------------------------------------------
def test_counter_gauge_histogram_basics():
    reg = MetricsRegistry()
    jobs = reg.counter("jobs_total", "jobs", ("status",))
    jobs.labels("ok").inc()
    jobs.labels("ok").inc(2)
    jobs.labels(status="error").inc()
    assert jobs.labels("ok").value == 3
    assert jobs.labels("error").value == 1
    util = reg.gauge("util", "utilization")
    util.set(0.5)
    assert util.labels().value == 0.5
    hist = reg.histogram("wall", "seconds", buckets=(1.0, 10.0))
    for v in (0.5, 5.0, 50.0):
        hist.observe(v)
    assert hist.labels().count == 3
    assert hist.labels().sum == pytest.approx(55.5)


def test_counter_rejects_decrement_and_bad_names():
    reg = MetricsRegistry()
    counter = reg.counter("c_total", "help")
    with pytest.raises(ConfigurationError):
        counter.inc(-1)
    with pytest.raises(ConfigurationError):
        reg.counter("bad name", "help")
    with pytest.raises(ConfigurationError):
        reg.counter("ok_total", "help", ("bad-label",))


def test_reregistration_same_schema_is_idempotent():
    reg = MetricsRegistry()
    first = reg.counter("x_total", "help", ("a",))
    again = reg.counter("x_total", "help", ("a",))
    assert first is again
    with pytest.raises(ConfigurationError):
        reg.counter("x_total", "help", ("b",))      # different labels
    with pytest.raises(ConfigurationError):
        reg.gauge("x_total", "help", ("a",))        # different kind


PROM_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"                      # metric name
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"'      # first label
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})?' # more labels
    r" [^ ]+$")                                       # value


def test_prometheus_export_parses_line_by_line():
    reg = MetricsRegistry()
    reg.counter("repro_jobs_total", "completed jobs",
                ("status",)).labels("ok").inc(3)
    reg.gauge("repro_util", "utilization").set(0.25)
    hist = reg.histogram("repro_wall_seconds", "wall", buckets=(0.1, 1.0))
    hist.observe(0.05)
    hist.observe(5.0)
    text = reg.to_prometheus()
    families = set()
    for line in text.splitlines():
        if line.startswith("# HELP") or line.startswith("# TYPE"):
            families.add(line.split()[2])
            continue
        assert PROM_LINE.match(line), f"unparseable line: {line!r}"
    assert {"repro_jobs_total", "repro_util",
            "repro_wall_seconds"} <= families
    # histogram renders cumulative buckets, +Inf, sum and count
    assert 'repro_wall_seconds_bucket{le="0.1"} 1' in text
    assert 'repro_wall_seconds_bucket{le="1"} 1' in text
    assert 'repro_wall_seconds_bucket{le="+Inf"} 2' in text
    assert "repro_wall_seconds_sum 5.05" in text
    assert "repro_wall_seconds_count 2" in text


def test_prometheus_label_escaping():
    assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'
    reg = MetricsRegistry()
    reg.counter("odd_total", "h", ("site",)) \
        .labels('quo"te\\slash\nline').inc()
    text = reg.to_prometheus()
    line = [l for l in text.splitlines() if l.startswith("odd_total{")][0]
    assert line == 'odd_total{site="quo\\"te\\\\slash\\nline"} 1'
    assert PROM_LINE.match(line)


def test_registry_json_export_round_trips():
    reg = MetricsRegistry()
    reg.counter("a_total", "h", ("k",)).labels("v").inc(7)
    payload = json.loads(reg.to_json_text())
    family = payload["a_total"]
    assert family["type"] == "counter"
    assert family["series"] == [{"labels": {"k": "v"}, "value": 7}]


def test_per_run_families_reset():
    reg = MetricsRegistry()
    hist = reg.histogram("spans", "h", buckets=(10.0,), per_run=True)
    keep = reg.counter("keep_total", "h")
    hist.observe(5.0)
    keep.inc()
    reg.reset_per_run()
    assert hist.labels().count == 0 and hist.labels().sum == 0.0
    assert keep.labels().value == 1


# --- span tracer ------------------------------------------------------------
def test_chrome_trace_is_valid_and_monotonic():
    tracer = SpanTracer(clock=fake_clock())
    tracer.set_process(7, "worker 7")
    tracer.set_thread(7, 1, "shard")
    with tracer.span("outer", cat="test"):
        tracer.instant("tick", cat="test")
    tracer.complete("job", ts_us=50.0, dur_us=10.0, pid=7, tid=1)
    body = json.loads(tracer.to_chrome())
    events = body["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    rest = [e for e in events if e["ph"] != "M"]
    # metadata first, then events sorted by timestamp
    assert events[:len(meta)] == meta
    ts = [e["ts"] for e in rest]
    assert ts == sorted(ts)
    assert all(e["ph"] in ("X", "i") for e in rest)
    assert all(e["dur"] >= 0 for e in rest if e["ph"] == "X")
    # pid/tid round trip through the metadata name events
    names = {(e["pid"], e["name"], e["args"]["name"]) for e in meta}
    assert (7, "process_name", "worker 7") in names
    assert (0, "process_name", "repro") in names
    by_thread = {(e["pid"], e["tid"]): e["args"]["name"]
                 for e in meta if e["name"] == "thread_name"}
    assert by_thread[(7, 1)] == "shard"
    used_lanes = {(e["pid"], e["tid"]) for e in rest}
    assert used_lanes <= set(by_thread)


def test_tracer_span_ids_and_reset():
    tracer = SpanTracer(clock=fake_clock())
    with tracer.span("a"):
        pass
    with tracer.span("b"):
        pass
    ids = [e["args"]["span_id"] for e in tracer.events]
    assert ids == [1, 2]
    tracer.reset_ids()
    with tracer.span("c"):
        pass
    assert tracer.events[-1]["args"]["span_id"] == 1


def test_tracer_buffer_bound():
    tracer = SpanTracer(clock=fake_clock(), max_events=2)
    for _ in range(5):
        tracer.instant("x")
    # the bounded buffer keeps max_events real events plus exactly one
    # trace.buffer_full marker so an exported trace says it was truncated
    assert len(tracer) == 3
    assert tracer.dropped_events == 3
    markers = [e for e in tracer.events if e["name"] == "trace.buffer_full"]
    assert len(markers) == 1
    assert markers[0]["args"] == {"max_events": 2}


def test_tracer_drop_callback_counts():
    dropped = []
    tracer = SpanTracer(clock=fake_clock(), max_events=1)
    tracer.on_drop = dropped.append
    for _ in range(4):
        tracer.instant("x")
    assert sum(dropped) == 3 == tracer.dropped_events


# --- event log --------------------------------------------------------------
def test_event_log_correlation_and_jsonl():
    log = EventLog("run42", clock=fake_clock())
    log.emit("campaign.start", jobs=3)
    log.emit("job.done", job_id="j1", status="ok")
    lines = log.to_jsonl().splitlines()
    records = [json.loads(line) for line in lines]
    assert [r["seq"] for r in records] == [0, 1]
    assert all(r["run_id"] == "run42" for r in records)
    assert records[1]["event"] == "job.done"
    assert log.by_event("job.done")[0]["job_id"] == "j1"


def test_event_log_streams_live():
    import io
    stream = io.StringIO()
    log = EventLog("r", clock=fake_clock(), stream=stream)
    log.emit("hello", n=1)
    assert json.loads(stream.getvalue())["event"] == "hello"


# --- runtime slot + hooks ---------------------------------------------------
def test_slot_is_none_by_default_and_nests():
    assert active() is None
    with telemetry(run_id="outer") as outer:
        assert active() is outer
        with telemetry(run_id="inner") as inner:
            assert active() is inner
        assert active() is outer
    assert active() is None


def test_sim_advance_hook_records_spans_and_metrics():
    soc = Soc(tc1797_config(), seed=61)
    soc.load_program(make_loop_program())
    with telemetry(clock=fake_clock()) as tel:
        soc.run(2000)
    spans = [e for e in tel.tracer.events if e["name"] == "sim.advance"]
    assert spans, "no advance spans recorded"
    assert sum(s["args"]["cycles"] for s in spans) == 2000
    kernel = spans[0]["args"]["kernel"]
    reg = tel.registry
    assert reg.get("repro_sim_cycles_total").labels(kernel).value == 2000
    assert reg.get("repro_sim_advances_total").labels(kernel).value \
        == len(spans)
    assert reg.get("repro_sim_span_cycles").labels().count == len(spans)


def test_soc_reset_produces_identical_traces():
    """Satellite: reset reseeds span ids/buckets so re-runs trace equal."""
    soc = Soc(tc1797_config(), seed=61)
    soc.load_program(make_loop_program())
    with telemetry(clock=fake_clock()) as tel:
        soc.run(1500)
        first = tel.tracer.drain()
        hist_first = tel.registry.get("repro_sim_span_cycles") \
            .labels().count
        soc.reset()
        soc.run(1500)
        second = tel.tracer.drain()
        hist_second = tel.registry.get("repro_sim_span_cycles") \
            .labels().count
    assert first == second
    assert hist_first == hist_second
    assert tel.events.by_event("device.reset")


def test_fault_and_gap_hooks_record_instants():
    from repro.core.profiling import ProfilingSession, spec
    plan = FaultPlan(seed=7, rules=(
        {"site": "emem.drop", "probability": 1.0, "max_faults": 3},))
    device = EngineControlScenario().build(tc1797_config(), {}, seed=61)
    session = ProfilingSession(device, [spec.ipc(resolution=256)])
    with telemetry(clock=fake_clock()) as tel:
        with FaultInjector(plan, scope="test"):
            session.run(30_000)
    reg = tel.registry
    injected = reg.get("repro_faults_injected_total") \
        .labels("emem.drop").value
    assert injected == 3
    assert len(tel.events.by_event("fault.injected")) == 3
    fault_instants = [e for e in tel.tracer.events
                      if e["name"] == "fault.injected"]
    assert len(fault_instants) == 3
    # dropped messages open gaps, which land as instants + counters
    assert reg.get("repro_trace_gaps_total").labels("emem").value >= 1
    assert any(e["name"] == "gap.recorded" for e in tel.tracer.events)


def test_watchdog_trip_hook():
    soc = Soc(tc1797_config(), seed=61)
    soc.load_program(make_loop_program())
    watchdog = SimulationWatchdog(max_cycles=500)
    with telemetry(clock=fake_clock()) as tel:
        with pytest.raises(WatchdogExpired):
            with watchdog.guard(soc):
                soc.run(10_000)
    assert tel.registry.get("repro_watchdog_trips_total") \
        .labels("cycle").value == 1
    assert tel.events.by_event("watchdog.trip")[0]["kind"] == "cycle"


# --- bridge adapters --------------------------------------------------------
def test_bridge_folds_kernel_stats_without_changing_them():
    soc = Soc(tc1797_config(), seed=61)
    soc.load_program(make_loop_program())
    soc.run(2000)
    stats = soc.sim.kernel_stats()
    snapshot = json.dumps(stats, sort_keys=True, default=str)
    reg = MetricsRegistry()
    bridge.record_kernel_stats(reg, stats, kernel="quiescent")
    assert json.dumps(stats, sort_keys=True, default=str) == snapshot
    assert reg.get("repro_kernel_cycles_per_sec") \
        .labels("quiescent").value == stats["cycles_per_sec"]
    ticks = reg.get("repro_kernel_component_ticks_total")
    for entry in stats["components"]:
        assert ticks.labels(entry["name"]).value == entry["ticks"]


def test_bridge_folds_device_stats():
    from repro.core.profiling import ProfilingSession, spec
    device = EngineControlScenario().build(tc1797_config(), {}, seed=61)
    ProfilingSession(device, [spec.ipc(resolution=256)]).run(20_000)
    reg = MetricsRegistry()
    bridge.record_device_stats(reg, device)
    assert device.mcds.messages_by_kind     # the fold saw real traffic
    emem_stats = device.emem.stats()
    assert reg.get("repro_emem_fill_ratio").labels().value \
        == emem_stats["fill_ratio"]
    assert reg.get("repro_dap_bits_transferred_total").labels().value \
        == device.dap.stats()["bits_transferred"]
    messages = reg.get("repro_pipeline_messages_total")
    for kind, count in device.mcds.messages_by_kind.items():
        assert messages.labels(kind).value == count


# --- campaign determinism + fleet hooks -------------------------------------
CYCLES = 12_000


def make_jobs(count=2):
    customers = CustomerGenerator(seed=42).generate(count)
    return build_matrix(customers, cycle_budgets=(CYCLES,), seed=9)


def read_store(path):
    with open(path) as handle:
        records = [json.loads(line) for line in handle]
    for record in records:
        record.pop("wall_s", None)    # the only wall-clock field
        record.pop("_crc32", None)    # seals the record incl. wall_s
    return records


def test_campaign_payloads_byte_identical_on_off(tmp_path):
    """The determinism contract: telemetry reads, never perturbs."""
    report_off = CampaignRunner(
        make_jobs(), workers=0,
        campaign_dir=str(tmp_path / "off")).run()
    with telemetry(clock=fake_clock()):
        report_on = CampaignRunner(
            make_jobs(), workers=0,
            campaign_dir=str(tmp_path / "on")).run()
    with open(report_off.aggregate_path, "rb") as handle:
        agg_off = handle.read()
    with open(report_on.aggregate_path, "rb") as handle:
        agg_on = handle.read()
    assert agg_off == agg_on
    assert read_store(report_off.store_path) \
        == read_store(report_on.store_path)


def test_campaign_telemetry_covers_fleet(tmp_path):
    with telemetry(clock=fake_clock()) as tel:
        report = CampaignRunner(
            make_jobs(), workers=0,
            cache_dir=str(tmp_path / "cache")).run()
        # warm re-run: cache hits show up as lookups + job source labels
        CampaignRunner(make_jobs(), workers=0,
                       cache_dir=str(tmp_path / "cache")).run()
    reg = tel.registry
    lookups = reg.get("repro_fleet_cache_lookups_total")
    assert lookups.labels("miss").value == 2
    assert lookups.labels("hit").value == 2
    jobs = reg.get("repro_fleet_jobs_total")
    assert jobs.labels("ok", "executed").value == 2
    assert jobs.labels("ok", "cache").value == 2
    assert reg.get("repro_fleet_job_wall_seconds").labels().count == 2
    names = {e["name"] for e in tel.tracer.events}
    assert {"campaign", "job.execute", "sim.advance",
            "pipeline.decode"} <= names
    events = {r["event"] for r in tel.events.records}
    assert {"campaign.start", "job.done", "campaign.end"} <= events
    starts = tel.events.by_event("campaign.start")
    assert len(starts) == 2 and report.metrics.executed == 2


def test_campaign_metrics_degradation_counts_from_payloads():
    from repro.fleet.metrics import CampaignMetrics
    metrics = CampaignMetrics()
    metrics.note_payload({"profile": {
        "lost_messages": 4,
        "gaps": [[0, 10, 4, "emem", "wrap"]],
        "parameters": {"tc.ipc": {"degraded": [1, 2]},
                       "tc.icache": {}},
    }})
    metrics.note_payload({"profile": {"lost_messages": 0,
                                      "parameters": {}}})
    assert metrics.lost_messages == 4
    assert metrics.trace_gaps == 1
    assert metrics.degraded_samples == 2
    assert "4 lost msgs / 1 gaps / 2 degraded samples" \
        in metrics.summary_table()


def test_write_outputs(tmp_path):
    with telemetry(run_id="files", clock=fake_clock()) as tel:
        with tel.span("work"):
            tel.emit("step", n=1)
    written = tel.write_outputs(
        str(tmp_path / "trace.json"), str(tmp_path / "metrics.prom"),
        str(tmp_path / "events.jsonl"))
    assert set(written) == {"trace", "metrics", "events"}
    body = json.loads((tmp_path / "trace.json").read_text())
    assert body["traceEvents"]
    prom = (tmp_path / "metrics.prom").read_text()
    assert "# TYPE repro_sim_cycles_total counter" in prom
    record = json.loads(
        (tmp_path / "events.jsonl").read_text().splitlines()[0])
    assert record["run_id"] == "files"
