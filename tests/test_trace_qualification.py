"""PC-window trace qualification: 'trace only function X'."""

import pytest

from repro.ed.device import EdConfig, EmulationDevice
from repro.mcds.trigger import PcInRange, Trigger
from repro.soc.config import tc1797_config
from repro.soc.memory import map as amap
from repro.workloads.program import ProgramBuilder


def build_device():
    builder = ProgramBuilder(code_base=amap.PSPR_BASE)
    main = builder.function("main")
    top = main.label("top")
    main.call("hot")
    main.alu(20)
    main.jump(top)
    hot = builder.function("hot", base=amap.PSPR_BASE + 0x1000)
    hot.loop(6, lambda f: f.alu(2))
    hot.ret()
    program = builder.assemble()
    device = EmulationDevice(EdConfig(soc=tc1797_config()), seed=45)
    device.load_program(program)
    return device, program


def test_pc_window_validation():
    device, _ = build_device()
    with pytest.raises(ValueError):
        PcInRange(device.cpu, 100, 100)


def test_pc_window_gates_trace_to_function():
    device, program = build_device()
    ptu = device.mcds.add_program_trace(enabled=False)
    hot_lo = program.symbol("hot")
    hot_hi = hot_lo + 0x200
    condition = PcInRange(device.cpu, hot_lo, hot_hi)
    device.mcds.add_trigger(Trigger(
        "hot-window", condition,
        on_enter=ptu.start, on_leave=ptu.stop))
    device.run(20_000)
    assert ptu.messages > 0
    # qualified trace is a small fraction of the instructions executed
    assert ptu.instructions_traced < device.cpu.retired
    # and the captured discontinuities stay inside the hot window
    # (allow boundary messages from the enable/disable skew of one cycle)
    inside = [m for m in device.emem.contents()
              if m.address is not None and hot_lo <= m.address < hot_hi]
    assert len(inside) >= 0.7 * sum(
        1 for m in device.emem.contents() if m.address is not None)


def test_unqualified_trace_sees_everything():
    device, program = build_device()
    ptu = device.mcds.add_program_trace()
    device.run(20_000)
    assert ptu.instructions_traced == device.cpu.retired
