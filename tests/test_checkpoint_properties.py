"""Property tests: checkpoint codec/format round-trips and damage detection.

Same idiom as ``test_emem_properties.py``: hypothesis drives arbitrary
state shapes through the tagged-JSON codec and the CRC-guarded document
format.  The invariants are the foundations the whole subsystem rests on:
``decode(encode(x)) == x`` for every state shape components produce,
``parse(render(body)) == body`` through a real file, and *any* single
character substitution anywhere in a rendered document is rejected.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.checkpoint import (CheckpointError, decode_value, encode_value,
                              parse_checkpoint, render_checkpoint)

# the value shapes that actually occur in component snapshots: JSON
# scalars plus tuples, bytes, sets, and dicts with non-string keys
scalars = (st.none() | st.booleans() | st.integers(-2**63, 2**63 - 1)
           | st.floats(allow_nan=False, allow_infinity=False)
           | st.text(max_size=12) | st.binary(max_size=12))

values = st.recursive(
    scalars,
    lambda children: (
        st.lists(children, max_size=4)
        | st.tuples(children, children)
        | st.sets(st.integers(-1000, 1000) | st.text(max_size=6),
                  max_size=4)
        | st.dictionaries(st.text(max_size=6), children, max_size=4)
        | st.dictionaries(st.integers(-1000, 1000), children, max_size=3)
        | st.dictionaries(st.tuples(st.integers(0, 99), st.integers(0, 99)),
                          children, max_size=3)),
    max_leaves=20)


@settings(max_examples=120, deadline=None)
@given(values)
def test_codec_roundtrip(value):
    encoded = encode_value(value)
    # the encoding must itself be plain JSON
    rebuilt = json.loads(json.dumps(encoded))
    assert decode_value(rebuilt) == value
    assert type(decode_value(rebuilt)) is type(value)


@settings(max_examples=60, deadline=None)
@given(st.dictionaries(st.text(min_size=1, max_size=8), values, max_size=5),
       st.dictionaries(st.text(min_size=1, max_size=8),
                       st.integers(0, 2**32), max_size=3))
def test_document_roundtrip(body, meta):
    text = render_checkpoint(body, meta)
    parsed_body, parsed_meta = parse_checkpoint(text)
    assert parsed_body == body
    assert parsed_meta == meta


@settings(max_examples=120, deadline=None)
@given(st.dictionaries(st.text(min_size=1, max_size=6),
                       st.integers(0, 10**6), min_size=1, max_size=4),
       st.data())
def test_any_single_character_substitution_is_rejected(body, data):
    """Flip one character anywhere — CRC, schema, magic, or body — and
    the document must be rejected; there is no silent-corruption window."""
    text = render_checkpoint(body, {"cycle": 1})
    position = data.draw(st.integers(0, len(text) - 1))
    replacement = data.draw(st.sampled_from("Zz9#"))
    if text[position] == replacement:
        replacement = "q"
    damaged = text[:position] + replacement + text[position + 1:]
    with pytest.raises(CheckpointError):
        parse_checkpoint(damaged)


@settings(max_examples=60, deadline=None)
@given(st.dictionaries(st.text(min_size=1, max_size=6),
                       st.integers(0, 10**6), min_size=1, max_size=4),
       st.data())
def test_any_truncation_is_rejected(body, data):
    text = render_checkpoint(body, {"cycle": 1})
    keep = data.draw(st.integers(0, len(text) - 1))
    with pytest.raises(CheckpointError):
        parse_checkpoint(text[:keep])


@settings(max_examples=8, deadline=None)
@given(st.integers(1, 4), st.integers(1, 3))
def test_simulator_roundtrip_at_arbitrary_cut_points(quarters, seed):
    """Kernel-level property: cutting a run at any chunk boundary and
    resuming from the file reproduces the uninterrupted oracle exactly."""
    from repro.soc.config import tc1797_config
    from repro.workloads import TransmissionScenario

    total, cut = 8_000, 2_000 * quarters

    control = TransmissionScenario().build(tc1797_config(), {}, seed=seed)
    control.run(total)

    first = TransmissionScenario().build(tc1797_config(), {}, seed=seed)
    first.run(cut)
    body = first.soc.sim.snapshot_state()
    # through the full encode/parse path, as save/load would do
    body, _ = parse_checkpoint(render_checkpoint(body, {}))

    resumed = TransmissionScenario().build(tc1797_config(), {}, seed=seed)
    resumed.soc._ensure_order()
    resumed.soc.sim.restore_state(body)
    resumed.run(total - cut)
    assert resumed.oracle() == control.oracle()
    assert resumed.cycle == control.cycle
