"""Shared test helpers: small deterministic programs."""

from repro.soc.cpu import isa
from repro.workloads.program import ProgramBuilder


def make_loop_program(alu_per_iter: int = 4, load_gen=None, store_gen=None,
                      extra=None):
    """An infinite main loop with configurable body, for timing tests."""
    builder = ProgramBuilder()
    main = builder.function("main")
    top = main.label("top")
    main.alu(alu_per_iter)
    if load_gen is not None:
        main.load(load_gen)
    if store_gen is not None:
        main.store(store_gen)
    if extra is not None:
        extra(main)
    main.jump(top)
    return builder.assemble()


def make_halt_builder():
    """Builder with a halting main — interrupt-driven-only workloads."""
    builder = ProgramBuilder()
    builder.function("main").halt()
    return builder
