"""Option evaluator: baseline, predictions vs measurements, ranking."""

import pytest

from repro.core.optimization import (OptionEvaluator, hardware_options,
                                     report, software_options)
from repro.soc.config import tc1797_config
from repro.workloads.engine import EngineControlScenario

WORK = 60_000   # small instruction budget keeps the test quick


@pytest.fixture(scope="module")
def evaluator():
    ev = OptionEvaluator(EngineControlScenario(), tc1797_config(),
                         hardware_options() + software_options(),
                         work_instructions=WORK, seed=31)
    ev.run_baseline()
    return ev


@pytest.fixture(scope="module")
def results(evaluator):
    return evaluator.evaluate()


def test_baseline_context(evaluator):
    ctx = evaluator.context
    assert ctx.stack.cpi > 1.0
    assert len(ctx.captures.fetch_addresses) > 1000
    assert len(ctx.captures.data_addresses) > 200
    assert ctx.hot_ranges


def test_baseline_deterministic():
    ev1 = OptionEvaluator(EngineControlScenario(), tc1797_config(), [],
                          work_instructions=WORK, seed=31)
    ev2 = OptionEvaluator(EngineControlScenario(), tc1797_config(), [],
                          work_instructions=WORK, seed=31)
    assert ev1.run_baseline().cycles == ev2.run_baseline().cycles


def test_all_options_evaluated(results):
    keys = {r.option.key for r in results}
    assert len(results) == len(hardware_options()) + len(software_options())
    assert "icache_x2" in keys


def test_ranking_sorted_by_gain_cost_ratio(results):
    ratios = [r.gain_cost_ratio for r in results]
    assert ratios == sorted(ratios, reverse=True)


def test_flash_path_options_win(results):
    """Paper Section 4: the CPU->flash path is the main lever."""
    top_hw = [r for r in results if r.option.kind == "hardware"][:3]
    flash_path = {"icache_x2", "flash_25ns", "prefetch_x4", "dbuf_x4",
                  "dcache_4k", "banks_x4"}
    assert any(r.option.key in flash_path for r in top_hw)
    best = max(results, key=lambda r: r.measured_gain_percent)
    assert best.option.key in flash_path


def test_predictions_track_measurements(results):
    mae = sum(r.prediction_error for r in results) / len(results)
    assert mae < 3.0    # gain points


def test_speedups_are_sane(results):
    for result in results:
        assert 0.9 < result.measured_speedup < 1.6, result.option.key
        assert result.baseline_cycles > 0
        assert result.option_cycles > 0


def test_report_tables_render(results):
    ranking = report.ranking_table(results)
    validation = report.validation_table(results)
    assert "gain/cost" in ranking
    assert "mean absolute error" in validation
    assert all(r.option.key in ranking for r in results)
