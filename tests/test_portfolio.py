"""Portfolio evaluation: population aggregation and Pareto frontier."""

import pytest

from repro.core.optimization import (ArchOption, PortfolioEntry,
                                     PortfolioEvaluator, hardware_options,
                                     pareto_frontier, portfolio_table)
from repro.soc.config import tc1797_config
from repro.workloads import CustomerGenerator


def make_entry(key, gain, cost, worst=None):
    option = ArchOption(key, key, "hardware", cost, lambda ctx: 1.0)
    return PortfolioEntry(option, {}, gain, worst if worst is not None
                          else gain)


# --- pure aggregation logic ---------------------------------------------------
def test_pareto_frontier_dominance():
    entries = [
        make_entry("cheap_small", 2.0, 10),
        make_entry("dear_big", 10.0, 100),
        make_entry("dominated", 1.5, 20),     # worse and dearer than first
        make_entry("negative", -1.0, 5),      # filtered (no gain)
    ]
    frontier = pareto_frontier(entries)
    keys = [e.option.key for e in frontier]
    assert keys == ["cheap_small", "dear_big"]


def test_regression_flag():
    assert make_entry("x", 3.0, 10, worst=-2.0).has_regression
    assert not make_entry("x", 3.0, 10, worst=-0.2).has_regression


def test_portfolio_table_renders():
    entries = [make_entry("a", 5.0, 10), make_entry("b", 1.0, 50)]
    table = portfolio_table(entries)
    assert "a" in table and "pareto" in table


# --- end-to-end on a tiny population ------------------------------------------
@pytest.fixture(scope="module")
def portfolio_entries():
    customers = [c for c in CustomerGenerator(seed=42).generate(6)
                 if c.domain == "engine"][:2]
    assert len(customers) == 2
    options = [o for o in hardware_options()
               if o.key in ("icache_x2", "flash_25ns", "spb_fast")]
    evaluator = PortfolioEvaluator(customers, tc1797_config(), options,
                                   work_instructions=50_000, seed=20)
    return evaluator.evaluate()


def test_portfolio_covers_options(portfolio_entries):
    assert {e.option.key for e in portfolio_entries} == {
        "icache_x2", "flash_25ns", "spb_fast"}
    for entry in portfolio_entries:
        assert len(entry.per_customer_gain) == 2


def test_portfolio_sorted_by_ratio(portfolio_entries):
    ratios = [e.gain_cost_ratio for e in portfolio_entries]
    assert ratios == sorted(ratios, reverse=True)


def test_flash_path_beats_bus_option(portfolio_entries):
    by_key = {e.option.key: e for e in portfolio_entries}
    assert by_key["flash_25ns"].weighted_gain > by_key["spb_fast"].weighted_gain


def test_weights_shift_aggregation():
    customers = [c for c in CustomerGenerator(seed=42).generate(6)
                 if c.domain == "engine"][:2]
    options = [o for o in hardware_options() if o.key == "icache_x2"]

    def weighted(weights):
        evaluator = PortfolioEvaluator(customers, tc1797_config(), options,
                                       weights=weights,
                                       work_instructions=50_000, seed=20)
        return evaluator.evaluate()[0]

    uniform = weighted(None)
    first_only = weighted({customers[0].name: 1.0, customers[1].name: 0.0})
    gains = uniform.per_customer_gain
    expected = gains[customers[0].name]
    assert first_only.weighted_gain == pytest.approx(expected, abs=1e-9)
