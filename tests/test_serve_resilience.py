"""Service resilience: journal recovery, idempotency, breaker, deadlines.

The subprocess SIGKILL drill lives in ``test_serve_restart.py``; these
tests drive the same machinery in-process, where clocks and breakers
are injectable.
"""

import asyncio
import os

import pytest

from repro.errors import ServiceUnavailable
from repro.fleet import CampaignSpec, run_campaign
from repro.resilience import OPEN, AdmissionJournal, CircuitBreaker, \
    fold_journal
from repro.serve import CampaignService, QuotaManager, TenantPolicy
from repro.serve.app import retry_after_header

SMALL = {"count": 2, "cycles": 8_000, "seed": 9}


def open_quota():
    return QuotaManager(default=TenantPolicy(burst=100, refill_per_s=100,
                                             max_queued=100))


async def wait_for(predicate, timeout=90.0, interval=0.02):
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError("condition not reached in time")
        await asyncio.sleep(interval)


def run(coro):
    return asyncio.run(coro)


def service_at(root, **kwargs):
    kwargs.setdefault("quota", open_quota())
    kwargs.setdefault("checkpoint_every", 4_000)
    return CampaignService(root=str(root), **kwargs)


# -- write-ahead journal ------------------------------------------------------

def test_submit_journals_before_visible(tmp_path):
    async def main():
        service = service_at(tmp_path / "serve")
        campaign = service.submit("t1", dict(SMALL), idempotency_key="k1")
        state = fold_journal(service.journal.replay())
        entry = state.campaigns[campaign.campaign_id]
        assert entry.state == "queued" and entry.tenant == "t1"
        assert entry.idempotency_key == "k1"
        assert state.idempotency[("t1", "k1")] == campaign.campaign_id
        await service.stop()
    run(main())


def test_lifecycle_is_journaled(tmp_path):
    async def main():
        service = service_at(tmp_path / "serve")
        await service.start()
        try:
            campaign = service.submit("t1", dict(SMALL))
            await wait_for(lambda: campaign.state == "completed")
        finally:
            await service.stop()
        state = fold_journal(service.journal.replay())
        entry = state.campaigns[campaign.campaign_id]
        assert entry.state == "completed" and entry.attempts == 1
    run(main())


# -- crash recovery -----------------------------------------------------------

def test_restart_recovers_queue_seq_and_idempotency(tmp_path):
    root = tmp_path / "serve"

    async def first():
        service = service_at(root)
        # never started: both campaigns stay queued — a "crash" leaves
        # exactly this journal behind
        a = service.submit("t1", dict(SMALL), idempotency_key="dup")
        b = service.submit("t2", dict(SMALL, priority=2))
        return a.campaign_id, b.campaign_id
    id_a, id_b = run(first())

    async def second():
        service = service_at(root)
        await service.start()
        try:
            # ids, queue membership, and the idempotency map survived
            assert sorted(service.campaigns) == sorted([id_a, id_b])
            assert service.campaigns[id_a].recovered
            replay = service.submit("t1", dict(SMALL),
                                    idempotency_key="dup")
            assert replay.campaign_id == id_a       # no double admission
            fresh = service.submit("t3", dict(SMALL))
            assert fresh.campaign_id == "cmp-000003"  # watermark advanced
            await wait_for(lambda: all(
                service.campaigns[c].state == "completed"
                for c in (id_a, id_b, fresh.campaign_id)))
        finally:
            await service.stop()
        reg = service.registry
        assert reg.get("repro_resilience_recovered_total") \
            .value("requeued") == 2
        assert reg.get("repro_resilience_idempotent_replays_total") \
            .value() == 1
    run(second())


def test_recovered_interrupted_campaign_resumes_byte_identical(tmp_path):
    """A campaign RUNNING at crash time resumes, not restarts.

    The journal says "running, attempt 1"; recovery re-queues it with
    that attempt count, so the next dispatch takes the resume path —
    completed jobs replayed from the store prefix — and the final
    aggregate is byte-identical to an uninterrupted offline run.
    """
    root = tmp_path / "serve"
    spec = {"count": 3, "cycles": 8_000, "seed": 9}

    async def first():
        service = service_at(root)
        await service.start()
        try:
            campaign = service.submit("t1", dict(spec))
            # let it finish at least one job, then "crash": stop the
            # loop without journaling any further transitions
            await wait_for(lambda: len(
                campaign.store.tail(0)[0]) >= 1)
            campaign.yield_flag.set()     # stop the runner at a boundary
            await wait_for(lambda: campaign.state != "running",
                           timeout=60.0)
            # overwrite the journal truth back to "running": exactly
            # what a SIGKILL mid-flight leaves behind
            service.journal.state(campaign.campaign_id, "running",
                                  attempts=1)
            return campaign.campaign_id
        finally:
            await service.stop()
    cid = run(first())

    async def second():
        service = service_at(root)
        await service.start()
        try:
            campaign = service.campaigns[cid]
            assert campaign.recovered
            await wait_for(lambda: campaign.state == "completed")
            events, _ = campaign.buffer.since(0)
            names = [n for _, n, _ in events]
            assert "campaign.recovered" in names
            return campaign.aggregate_path
        finally:
            await service.stop()
    aggregate_path = run(second())

    offline = run_campaign(CampaignSpec(**spec), workers=0,
                           campaign_dir=str(tmp_path / "offline"))
    with open(aggregate_path, "rb") as a, \
            open(offline.aggregate_path, "rb") as b:
        assert a.read() == b.read()


def test_restart_rebuilds_terminal_campaigns_and_compacts(tmp_path):
    root = tmp_path / "serve"

    async def first():
        service = service_at(root)
        await service.start()
        try:
            campaign = service.submit("t1", dict(SMALL))
            await wait_for(lambda: campaign.state == "completed")
            return campaign.campaign_id
        finally:
            await service.stop()
    cid = run(first())

    async def second():
        service = service_at(root)
        await service.start()
        try:
            campaign = service.campaigns[cid]
            assert campaign.state == "completed" and campaign.recovered
            # the surviving aggregate is re-attached and servable
            assert campaign.aggregate_path is not None
            assert os.path.exists(campaign.aggregate_path)
            assert service.aggregate_text(campaign)
        finally:
            await service.stop()
        # compaction bounded the journal: one admit + one state
        records = AdmissionJournal(str(root)).replay()
        assert [r["op"] for r in records] == ["admit", "state"]
    run(second())


# -- drain + breaker → 503 ----------------------------------------------------

def test_submit_during_drain_is_service_unavailable(tmp_path):
    async def main():
        service = service_at(tmp_path / "serve")
        await service.start()
        await service.stop()
        with pytest.raises(ServiceUnavailable) as exc:
            service.submit("t1", dict(SMALL))
        assert exc.value.retryable
        assert exc.value.retry_after_s == 5.0
    run(main())


def test_breaker_sheds_admissions_with_retry_after(tmp_path):
    async def main():
        clock = lambda: 1000.0                            # noqa: E731
        breaker = CircuitBreaker(min_samples=2, cooldown_s=30.0,
                                 clock=clock)
        service = service_at(tmp_path / "serve", breaker=breaker)
        breaker.record_failure()
        breaker.record_failure()                          # trips
        assert breaker.state == OPEN
        with pytest.raises(ServiceUnavailable) as exc:
            service.submit("t1", dict(SMALL))
        assert exc.value.retry_after_s == pytest.approx(30.0)
        assert service.campaigns == {}                    # nothing admitted
        reg = service.registry
        assert reg.get("repro_resilience_shed_total").value() == 1
        assert reg.get("repro_serve_campaigns_total") \
            .value("t1", "shed") == 1
        assert reg.get("repro_resilience_breaker_transitions_total") \
            .value("open") == 1
        await service.stop()
    run(main())


def test_failed_campaigns_feed_the_breaker(tmp_path):
    async def main():
        breaker = CircuitBreaker(min_samples=2, failure_threshold=0.5)
        service = service_at(tmp_path / "serve", breaker=breaker)
        await service.start()
        try:
            # a drill campaign quarantines its crashing job → failure
            # samples land in the breaker window
            campaign = service.submit(
                "t1", {"count": 1, "cycles": 8_000, "seed": 9,
                       "drill": True})
            await wait_for(lambda: campaign.state == "completed")
            assert campaign.quarantined
            assert breaker.failure_rate() > 0.0
        finally:
            await service.stop()
    run(main())


# -- deadlines ----------------------------------------------------------------

def test_queued_campaign_expires_at_deadline(tmp_path):
    async def main():
        # one slot occupied by a long campaign; the queued one carries a
        # deadline too short to ever reach a slot
        service = service_at(tmp_path / "serve", slots=1)
        await service.start()
        try:
            long = service.submit(
                "t1", {"count": 2, "cycles": 40_000, "seed": 9})
            await wait_for(lambda: long.state == "running")
            doomed = service.submit("t2", dict(SMALL, deadline_s=0.2))
            assert doomed.deadline_at is not None
            await wait_for(
                lambda: doomed.state == "deadline_exceeded", timeout=30.0)
            # terminal: out of the queue, buffer closed, journaled
            assert doomed.campaign_id not in [
                e.campaign_id for e in service.queue.entries()]
            assert doomed.buffer.closed
            state = fold_journal(service.journal.replay())
            assert state.campaigns[doomed.campaign_id].state == \
                "deadline_exceeded"
            reg = service.registry
            assert reg.get("repro_resilience_deadline_exceeded_total") \
                .value("queued") == 1
        finally:
            await service.stop()
    run(main())


def test_running_campaign_expires_at_deadline(tmp_path):
    async def main():
        service = service_at(tmp_path / "serve", slots=1,
                             checkpoint_every=2_000)
        await service.start()
        try:
            campaign = service.submit(
                "t1", {"count": 2, "cycles": 200_000, "seed": 9,
                       "deadline_s": 0.3})
            await wait_for(
                lambda: campaign.state == "deadline_exceeded",
                timeout=60.0)
            assert campaign.aggregate_path is None
            assert "deadline exceeded while running" in campaign.error
            reg = service.registry
            assert reg.get("repro_resilience_deadline_exceeded_total") \
                .value("running") == 1
        finally:
            await service.stop()
    run(main())


def test_status_exposes_deadline_and_breaker(tmp_path):
    async def main():
        service = service_at(tmp_path / "serve")
        campaign = service.submit("t1", dict(SMALL, deadline_s=3600))
        status = campaign.status()
        assert status["deadline_at"] == campaign.deadline_at
        assert status["recovered"] is False
        overview = service.overview()
        assert overview["breaker"]["state"] == "closed"
        await service.stop()
    run(main())


# -- Retry-After serialisation (satellite: math.ceil, not int(x+.999)) -------

@pytest.mark.parametrize("value, expected", [
    (0.0, "1"),                 # zero → floor of one second
    (-3.0, "1"),                # negative → floor of one second
    (0.4, "1"),                 # sub-second → rounds up to the floor
    (1.0, "1"),                 # exact integer stays exact
    (2.0005, "3"),              # the old int(x+0.999) trick said "2"
    (2.5, "3"),
    (59.999, "60"),
    (float("inf"), "3600"),     # zero-refill quota buckets report inf
    (float("nan"), "1"),
    (7200.0, "3600"),           # clamped to the ceiling
])
def test_retry_after_header_edges(value, expected):
    assert retry_after_header(value) == expected
