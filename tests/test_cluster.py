"""Cluster coordination units + the end-to-end in-process guarantees.

Covers the coordinator artifacts (manifest validation, deterministic
plan publishing, deduped finalization), the multi-writer hardening of
the result store (advisory lock + two *processes* appending
concurrently) and the content-addressed cache (atomic writes, digest /
CRC re-verification, quarantine-on-damage), and the flagship property:
an in-process cluster run produces an ``aggregate.json`` byte-identical
to a plain single-node campaign.  (Node *death* is exercised by the
subprocess drill in ``test_cluster_chaos.py``.)
"""

import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.cluster import (ClusterNode, cluster_status, dedupe_records,
                           run_clustered, submit)
from repro.cluster.coordinator import load_batch, load_manifest, publish_plan
from repro.errors import ConfigurationError
from repro.fleet.api import run_campaign
from repro.fleet.cache import QUARANTINE_SUFFIX, ResultCache, payload_crc
from repro.fleet.spec import CampaignJob
from repro.fleet.store import ResultStore

CYCLES = 2_000
EVERY = 500


def make_jobs(n=4, cycles=CYCLES, **overrides):
    return [CampaignJob(name=f"c{i}", domain="engine", device="tc1797",
                        params={}, cycles=cycles, seed=7, **overrides)
            for i in range(n)]


# --- coordinator artifacts --------------------------------------------------
def test_submit_validates(tmp_path):
    cdir = str(tmp_path / "c")
    with pytest.raises(ConfigurationError):
        submit(cdir, [])                       # no jobs
    jobs = make_jobs(2)
    with pytest.raises(ConfigurationError):
        submit(cdir, jobs + jobs)              # duplicates
    with pytest.raises(ConfigurationError):    # a job that kills its node
        submit(cdir, make_jobs(1, fault="exit"))
    with pytest.raises(ConfigurationError):
        submit(cdir, jobs, checkpoint_every=0)
    submit(cdir, jobs)
    with pytest.raises(ConfigurationError):    # one dir = one campaign
        submit(cdir, jobs)


def test_fault_plan_disables_shared_cache(tmp_path):
    plan = {"seed": 1, "rules": []}
    submit(str(tmp_path / "a"), make_jobs(1), fault_plan=plan)
    manifest = load_manifest(str(tmp_path / "a"))
    assert manifest["cache"] is False
    submit(str(tmp_path / "b"), make_jobs(1))
    assert load_manifest(str(tmp_path / "b"))["cache"] is True


def test_publish_plan_is_deterministic(tmp_path):
    """A coordinator dying mid-publish is harmless: a re-publish writes
    byte-identical batch files and the same plan."""
    cdir = str(tmp_path)
    submit(cdir, make_jobs(5), batches=3)
    manifest = load_manifest(cdir)
    plan_a = publish_plan(cdir, manifest)
    first = {name: open(os.path.join(cdir, "batches", name + ".json"),
                        "rb").read()
             for name in plan_a["batches"]}
    plan_b = publish_plan(cdir, manifest)      # elected again, re-publishes
    assert plan_a == plan_b
    for name, content in first.items():
        with open(os.path.join(cdir, "batches", name + ".json"),
                  "rb") as handle:
            assert handle.read() == content
    # every job appears in exactly one batch
    seen = [job["name"] for name in plan_a["batches"]
            for job in load_batch(cdir, name)]
    assert sorted(seen) == sorted(job.name for job in make_jobs(5))


def test_dedupe_records_first_commit_wins():
    records = [
        {"job_id": "b", "status": "ok", "attempts": 1},
        {"job_id": "a", "status": "ok", "attempts": 2},
        {"job_id": "b", "status": "ok", "attempts": 9},   # benign dup
    ]
    deduped = dedupe_records(records)
    assert [r["job_id"] for r in deduped] == ["a", "b"]
    assert deduped[1]["attempts"] == 1


# --- result store: multi-writer hardening -----------------------------------
APPENDER = textwrap.dedent("""
    import sys
    from repro.fleet.store import ResultStore
    store = ResultStore(sys.argv[1])
    who = sys.argv[2]
    for i in range(40):
        store.append({"job_id": f"{who}-{i:03d}", "status": "ok",
                      "payload": {"who": who, "i": i}})
""")


def test_concurrent_append_from_two_processes(tmp_path):
    """Two writer processes interleave whole records, never bytes: every
    line loads back intact and nothing is quarantined."""
    env = dict(os.environ)
    src = os.path.abspath(os.path.join(os.path.dirname(__file__), "..",
                                       "src"))
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    procs = [subprocess.Popen([sys.executable, "-c", APPENDER,
                               str(tmp_path), who], env=env)
             for who in ("alpha", "beta")]
    for proc in procs:
        assert proc.wait(timeout=60) == 0
    store = ResultStore(str(tmp_path))
    records = store.load()
    assert len(records) == 80
    assert len({r["job_id"] for r in records}) == 80
    assert not os.path.exists(store.quarantine_path)


def test_store_lock_serializes_read_then_append(tmp_path):
    store = ResultStore(str(tmp_path))
    with store.lock():
        assert store.load() == []
        store_b = ResultStore(str(tmp_path))   # an uncontended reader
        assert store_b.load() == []
    store.append({"job_id": "x", "status": "ok"})
    assert len(store.load()) == 1


def test_fenced_append_rejects_before_writing(tmp_path):
    calls = []

    def fence():
        calls.append(True)
        raise RuntimeError("stale")

    store = ResultStore(str(tmp_path))
    with pytest.raises(RuntimeError):
        store.append({"job_id": "x"}, fence=fence)
    assert calls and not os.path.exists(store.path)


# --- result cache: multi-node hardening -------------------------------------
def test_cache_quarantines_unparseable_entry(tmp_path):
    cache = ResultCache(str(tmp_path))
    job = make_jobs(1)[0]
    path = cache.store(job, {"name": job.name, "profile": {}})
    with open(path, "w") as handle:
        handle.write("{torn")
    with pytest.warns(RuntimeWarning):
        assert cache.lookup(job) is None
    assert os.path.exists(path + QUARANTINE_SUFFIX)
    assert not os.path.exists(path)            # never served again
    assert cache.lookup(job) is None           # plain miss now


def test_cache_rejects_foreign_digest(tmp_path):
    cache = ResultCache(str(tmp_path))
    a, b = make_jobs(2)
    path_a = cache.store(a, {"name": a.name})
    # a foreign entry copied under the wrong name must not be a hit
    os.replace(path_a, os.path.join(str(tmp_path), f"{b.digest}.json"))
    with pytest.warns(RuntimeWarning):
        assert cache.lookup(b) is None


def test_cache_rejects_bitflipped_payload(tmp_path):
    cache = ResultCache(str(tmp_path))
    job = make_jobs(1)[0]
    path = cache.store(job, {"name": job.name, "value": 1})
    with open(path) as handle:
        entry = json.load(handle)
    entry["payload"]["value"] = 2              # flip a payload bit
    with open(path, "w") as handle:
        json.dump(entry, handle)
    with pytest.warns(RuntimeWarning):
        assert cache.lookup(job) is None
    # legacy entries (no stored CRC) are still served
    entry["payload"]["value"] = 1
    del entry["payload_crc32"]
    with open(path, "w") as handle:
        json.dump(entry, handle)
    assert cache.lookup(job) == {"name": job.name, "value": 1}


def test_cache_store_is_atomic_and_verified(tmp_path):
    cache = ResultCache(str(tmp_path))
    job = make_jobs(1)[0]
    payload = {"name": job.name, "profile": {"parameters": {}}}
    cache.store(job, payload)
    assert not [n for n in os.listdir(str(tmp_path))
                if n.endswith(".tmp")]         # no droppings
    with open(cache._path(job.digest)) as handle:
        entry = json.load(handle)
    assert entry["payload_crc32"] == payload_crc(payload)
    assert cache.lookup(job) == payload


# --- end-to-end: in-process cluster runs ------------------------------------
def test_cluster_aggregate_matches_single_node_bytes(tmp_path):
    """The acceptance criterion: a clustered campaign's aggregate is
    byte-identical to a plain ``run_campaign`` of the same jobs."""
    jobs = make_jobs(4)
    report = run_clustered(jobs, str(tmp_path / "cluster"), nodes=0,
                           batches=2, checkpoint_every=EVERY)
    assert report.aggregate_path and not report.preempted
    assert len(report.ok_records) == 4
    ref = run_campaign(jobs, workers=0,
                       campaign_dir=str(tmp_path / "single"),
                       checkpoint_every=EVERY)
    with open(report.aggregate_path, "rb") as handle:
        cluster_bytes = handle.read()
    with open(ref.aggregate_path, "rb") as handle:
        assert handle.read() == cluster_bytes


def test_cluster_quarantines_poison_jobs(tmp_path):
    jobs = make_jobs(3) + [CampaignJob(name="poison", domain="engine",
                                       device="tc1797", params={},
                                       cycles=CYCLES, seed=7,
                                       fault="crash")]
    report = run_clustered(jobs, str(tmp_path), nodes=0, batches=2,
                           checkpoint_every=EVERY, max_retries=1)
    assert len(report.ok_records) == 3
    assert [r["job_id"] for r in report.quarantined] == \
        [j.job_id for j in jobs if j.fault]
    assert report.quarantined[0]["attempts"] == 2


def test_cluster_flaky_job_retries_in_place(tmp_path):
    jobs = make_jobs(2) + [CampaignJob(name="flaky", domain="engine",
                                       device="tc1797", params={},
                                       cycles=CYCLES, seed=7,
                                       fault="flaky:2")]
    report = run_clustered(jobs, str(tmp_path), nodes=0, batches=1,
                           checkpoint_every=EVERY, max_retries=3)
    assert len(report.ok_records) == 3 and not report.quarantined
    flaky = [r for r in report.records if r["job"]["name"] == "flaky"][0]
    assert flaky["attempts"] == 3              # failed twice, then ok


def test_second_node_resumes_a_half_finished_campaign(tmp_path):
    """A node joining after records already exist skips committed jobs
    (the resume scan) and completes the rest."""
    cdir = str(tmp_path)
    jobs = make_jobs(4)
    submit(cdir, jobs, batches=2, checkpoint_every=EVERY)
    first = ClusterNode(cdir, node_id="n1")
    plan = first._ensure_plan()
    lease = first.leases.claim(plan["batches"][0])
    assert first._run_batch(lease) == "done"
    done_before = first.jobs_done
    assert 0 < done_before < 4
    second = ClusterNode(cdir, node_id="n2")
    summary = second.run()
    assert summary["state"] == "done"
    assert second.jobs_done == 4 - done_before
    status = cluster_status(cdir)
    assert status["final"] and status["records"]["ok"] == 4


def test_cluster_status_shapes(tmp_path):
    empty = cluster_status(str(tmp_path / "nothing"))
    assert empty["state"] == "empty"
    cdir = str(tmp_path / "c")
    submit(cdir, make_jobs(2), batches=2)
    status = cluster_status(cdir)
    assert status["total_jobs"] == 2 and not status["planned"]
    run_clustered(None, cdir, nodes=0)
    status = cluster_status(cdir)
    assert status["planned"] and status["final"]
    assert status["done_batches"] == status["batches"]
    assert status["records"] == {"ok": 2, "quarantined": 0}
    assert status["nodes"] and status["nodes"][0]["node"] == "node-local"


def test_shared_cache_dedupes_across_campaigns(tmp_path):
    """Two cluster campaigns over different dirs share nothing, but a
    second run over a *pre-seeded* store dir serves from cache files a
    previous node wrote (the content-addressed dedupe layer)."""
    jobs = make_jobs(3)
    report_a = run_clustered(jobs, str(tmp_path / "a"), nodes=0,
                             batches=2, checkpoint_every=EVERY)
    assert report_a.metrics.executed == 3
    # copy the shared cache into the new cluster dir wholesale
    os.makedirs(str(tmp_path / "b"))
    import shutil
    shutil.copytree(str(tmp_path / "a" / "cache"),
                    str(tmp_path / "b" / "cache"))
    report_b = run_clustered(jobs, str(tmp_path / "b"), nodes=0,
                             batches=2, checkpoint_every=EVERY)
    assert report_b.metrics.cache_hits == 3
    assert report_b.metrics.executed == 0
    with open(report_a.aggregate_path, "rb") as handle:
        bytes_a = handle.read()
    with open(report_b.aggregate_path, "rb") as handle:
        assert handle.read() == bytes_a
