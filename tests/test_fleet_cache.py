"""Content-addressed result cache: hits, misses, invalidation, corruption."""

import json
import os

from repro.fleet import ResultCache
from repro.fleet import spec as fleet_spec
from repro.fleet.spec import CampaignJob


def make_job(**overrides):
    base = dict(name="c0", domain="engine", device="tc1797",
                params={"rpm": 4500}, cycles=20_000, seed=9)
    base.update(overrides)
    return CampaignJob(**base)


PAYLOAD = {"name": "c0", "profile": {"parameters": {}}}


def test_miss_then_hit(tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    job = make_job()
    assert cache.lookup(job) is None
    cache.store(job, PAYLOAD)
    assert cache.lookup(job) == PAYLOAD
    assert cache.hits == 1 and cache.misses == 1
    assert cache.hit_rate == 0.5
    assert len(cache) == 1


def test_spec_change_is_a_miss(tmp_path):
    cache = ResultCache(str(tmp_path))
    cache.store(make_job(), PAYLOAD)
    assert cache.lookup(make_job(cycles=30_000)) is None
    assert cache.lookup(make_job(params={"rpm": 5500})) is None


def test_version_bump_invalidates(tmp_path, monkeypatch):
    cache = ResultCache(str(tmp_path))
    cache.store(make_job(), PAYLOAD)
    monkeypatch.setattr(fleet_spec, "__version__", "99.0.0")
    assert cache.lookup(make_job()) is None


def test_store_is_idempotent_and_atomic(tmp_path):
    cache = ResultCache(str(tmp_path))
    job = make_job()
    path_a = cache.store(job, PAYLOAD)
    path_b = cache.store(job, PAYLOAD)
    assert path_a == path_b
    assert len(cache) == 1
    assert not [name for name in os.listdir(str(tmp_path))
                if name.endswith(".tmp")]
    entry = json.load(open(path_a))
    assert entry["digest"] == job.digest
    assert entry["job"]["name"] == "c0"


def test_corrupt_entry_dropped(tmp_path):
    cache = ResultCache(str(tmp_path))
    job = make_job()
    path = cache.store(job, PAYLOAD)
    with open(path, "w") as handle:
        handle.write("{torn")
    assert cache.lookup(job) is None          # treated as a miss
    assert not os.path.exists(path)           # and the entry is dropped
    cache.store(job, PAYLOAD)
    assert cache.lookup(job) == PAYLOAD       # cache self-heals
