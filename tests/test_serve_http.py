"""HTTP surface: endpoints, error mapping, SSE streaming + reconnect."""

import asyncio
import json

import pytest

from repro.serve import CampaignService, QuotaManager, ServeApp, \
    TenantPolicy

SMALL = {"count": 2, "cycles": 8_000, "seed": 9}


def open_quota():
    return QuotaManager(default=TenantPolicy(burst=100, refill_per_s=100,
                                             max_queued=100))


async def http(host, port, method, path, body=None, headers=None):
    """One minimal HTTP/1.1 request; returns (status, headers, body)."""
    reader, writer = await asyncio.open_connection(host, port)
    payload = b"" if body is None else json.dumps(body).encode()
    head = [f"{method} {path} HTTP/1.1", f"Host: {host}",
            f"Content-Length: {len(payload)}"]
    for name, value in (headers or {}).items():
        head.append(f"{name}: {value}")
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + payload)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head_raw, _, body_raw = raw.partition(b"\r\n\r\n")
    lines = head_raw.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ")[1])
    resp_headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        resp_headers[name.strip().lower()] = value.strip()
    return status, resp_headers, body_raw


class Client:
    """Tiny test client bound to one running ServeApp."""

    def __init__(self, host, port):
        self.host, self.port = host, port

    async def get(self, path, **kw):
        return await http(self.host, self.port, "GET", path, **kw)

    async def get_json(self, path, **kw):
        status, headers, body = await self.get(path, **kw)
        assert status == 200, body
        return json.loads(body)

    async def post(self, path, body, tenant="t1", extra=None):
        headers = {"X-Tenant": tenant}
        headers.update(extra or {})
        return await http(self.host, self.port, "POST", path, body=body,
                          headers=headers)


async def started_app(tmp_path, **service_kw):
    service_kw.setdefault("quota", open_quota())
    service_kw.setdefault("checkpoint_every", 4_000)
    service = CampaignService(root=str(tmp_path / "serve"), **service_kw)
    app = ServeApp(service)
    host, port = await app.start(port=0)
    return app, Client(host, port)


async def wait_state(client, cid, state, timeout=90.0):
    deadline = asyncio.get_running_loop().time() + timeout
    while True:
        doc = await client.get_json(f"/v1/campaigns/{cid}")
        if doc["state"] == state:
            return doc
        assert asyncio.get_running_loop().time() < deadline
        await asyncio.sleep(0.05)


def test_basic_endpoints(tmp_path):
    async def main():
        app, client = await started_app(tmp_path)
        try:
            health = await client.get_json("/healthz")
            assert health["status"] == "ok"
            catalog = await client.get_json("/v1/catalog")
            assert set(catalog["devices"]) == {"tc1767", "tc1797"}
            assert "engine" in catalog["domains"]
            status, headers, body = await client.get("/metrics")
            assert status == 200
            assert headers["content-type"].startswith("text/plain")
            assert b"# TYPE repro_serve_queue_depth gauge" in body
            overview = await client.get_json("/v1/campaigns")
            assert overview["campaigns"] == []
        finally:
            await app.stop()
    asyncio.run(main())


def test_error_mapping(tmp_path):
    async def main():
        app, client = await started_app(tmp_path)
        try:
            status, _, body = await client.get("/nope")
            assert status == 404
            status, _, body = await client.get("/v1/campaigns/cmp-999999")
            assert status == 404
            assert b"cmp-999999" in body
            status, _, body = await client.post("/v1/campaigns",
                                                {"cycle": 100})
            assert status == 400
            assert b"unknown campaign spec" in body
            status, _, _ = await http(client.host, client.port, "DELETE",
                                      "/v1/campaigns")
            assert status == 405
            status, _, body = await client.get(
                "/v1/campaigns?x=1")     # list still works with query
            assert status == 200
        finally:
            await app.stop()
    asyncio.run(main())


def test_quota_maps_to_429_with_retry_after(tmp_path):
    async def main():
        quota = QuotaManager(default=TenantPolicy(
            burst=1, refill_per_s=0.25, max_queued=100))
        app, client = await started_app(tmp_path, quota=quota)
        try:
            status, _, _ = await client.post("/v1/campaigns", dict(SMALL))
            assert status == 200
            status, headers, body = await client.post("/v1/campaigns",
                                                      dict(SMALL))
            assert status == 429
            assert int(headers["retry-after"]) >= 1
            assert b"submission rate" in body
        finally:
            await app.stop()
    asyncio.run(main())


def test_zero_refill_quota_serialises_infinite_retry_after(tmp_path):
    """refill_per_s=0 reports retry_after_s=inf — the header must clamp
    to the ceiling instead of 500ing on int(inf) (the pre-math.ceil bug)."""
    async def main():
        quota = QuotaManager(default=TenantPolicy(
            burst=1, refill_per_s=0.0, max_queued=100))
        app, client = await started_app(tmp_path, quota=quota)
        try:
            status, _, _ = await client.post("/v1/campaigns", dict(SMALL))
            assert status == 200
            status, headers, _ = await client.post("/v1/campaigns",
                                                   dict(SMALL))
            assert status == 429
            assert headers["retry-after"] == "3600"
        finally:
            await app.stop()
    asyncio.run(main())


def test_idempotency_key_replays_original_campaign(tmp_path):
    async def main():
        app, client = await started_app(tmp_path)
        try:
            status, _, body = await client.post(
                "/v1/campaigns", dict(SMALL),
                extra={"Idempotency-Key": "retry-42"})
            assert status == 200
            first = json.loads(body)["id"]
            # the client's network blip: same key, same tenant → the
            # original campaign, not a duplicate admission
            status, headers, body = await client.post(
                "/v1/campaigns", dict(SMALL),
                extra={"Idempotency-Key": "retry-42"})
            assert status == 200
            assert json.loads(body)["id"] == first
            assert headers["location"] == f"/v1/campaigns/{first}"
            # a different key is a different request
            status, _, body = await client.post(
                "/v1/campaigns", dict(SMALL),
                extra={"Idempotency-Key": "retry-43"})
            assert json.loads(body)["id"] != first
            # another tenant's identical key is also a different request
            status, _, body = await client.post(
                "/v1/campaigns", dict(SMALL), tenant="t2",
                extra={"Idempotency-Key": "retry-42"})
            assert json.loads(body)["id"] != first
        finally:
            await app.stop()
    asyncio.run(main())


def test_tripped_breaker_maps_to_503_with_retry_after(tmp_path):
    async def main():
        from repro.resilience import CircuitBreaker
        breaker = CircuitBreaker(min_samples=2, cooldown_s=120.0,
                                 clock=lambda: 1000.0)
        app, client = await started_app(tmp_path, breaker=breaker)
        try:
            breaker.record_failure()
            breaker.record_failure()            # trips open
            status, headers, body = await client.post("/v1/campaigns",
                                                      dict(SMALL))
            assert status == 503
            assert headers["retry-after"] == "120"
            assert b"shedding" in body
            # 503 is service-wide and retryable; 429 stays tenant quota
            metrics = (await client.get("/metrics"))[2].decode()
            assert "repro_resilience_shed_total 1" in metrics
            assert 'repro_resilience_breaker_state 2' in metrics
        finally:
            await app.stop()
    asyncio.run(main())


def test_submit_status_results_aggregate_roundtrip(tmp_path):
    async def main():
        app, client = await started_app(tmp_path)
        try:
            status, headers, body = await client.post("/v1/campaigns",
                                                      dict(SMALL))
            assert status == 200
            sub = json.loads(body)
            cid = sub["id"]
            assert headers["location"] == f"/v1/campaigns/{cid}"
            assert sub["tenant"] == "t1"
            # aggregate 404s until the campaign completes
            status, _, _ = await client.get(
                f"/v1/campaigns/{cid}/aggregate")
            assert status == 404
            await wait_state(client, cid, "completed")
            page = await client.get_json(f"/v1/campaigns/{cid}/results")
            assert len(page["records"]) == 2 and page["complete"]
            # incremental paging: nothing new after next_offset
            tail = await client.get_json(
                f"/v1/campaigns/{cid}/results?offset={page['next_offset']}")
            assert tail["records"] == []
            status, _, agg = await client.get(
                f"/v1/campaigns/{cid}/aggregate")
            assert status == 200
            doc = json.loads(agg)
            assert len(doc["jobs"]) == 2
        finally:
            await app.stop()
    asyncio.run(main())


async def read_sse(reader, until_event, timeout=90.0):
    """Collect SSE frames until one named ``until_event`` arrives."""
    frames = []
    event, data, event_id = None, [], None
    while True:
        line = await asyncio.wait_for(reader.readline(), timeout)
        assert line, "stream closed before terminal event"
        line = line.decode().rstrip("\n")
        if line.startswith(":"):
            continue
        if line.startswith("id: "):
            event_id = int(line[4:])
        elif line.startswith("event: "):
            event = line[7:]
        elif line.startswith("data: "):
            data.append(line[6:])
        elif line == "":
            if event or data:
                frames.append((event_id, event, "\n".join(data)))
                if event == until_event:
                    return frames
            event, data, event_id = None, [], None


def test_sse_stream_to_completion_and_reconnect(tmp_path):
    async def main():
        app, client = await started_app(tmp_path)
        try:
            _, _, body = await client.post("/v1/campaigns", dict(SMALL))
            cid = json.loads(body)["id"]
            reader, writer = await asyncio.open_connection(
                client.host, client.port)
            writer.write(f"GET /v1/campaigns/{cid}/events HTTP/1.1\r\n"
                         f"Host: x\r\n\r\n".encode())
            await writer.drain()
            head = await reader.readuntil(b"\r\n\r\n")
            assert b"200 OK" in head
            assert b"text/event-stream" in head
            frames = await read_sse(reader, "stream.close")
            writer.close()
            names = [f[1] for f in frames]
            assert names[0] == "stream.open"
            assert "campaign.queued" in names
            assert names.count("job.result") == 2
            assert "campaign.completed" in names
            results = [json.loads(f[2]) for f in frames
                       if f[1] == "job.result"]
            assert all(r["payload"] for r in results)
            # reconnect with Last-Event-ID replays only the tail
            last_results = [f[0] for f in frames if f[1] == "job.result"]
            reconnect_after = last_results[0]     # after the 1st result
            reader2, writer2 = await asyncio.open_connection(
                client.host, client.port)
            writer2.write(
                f"GET /v1/campaigns/{cid}/events HTTP/1.1\r\n"
                f"Host: x\r\nLast-Event-ID: {reconnect_after}\r\n"
                f"\r\n".encode())
            await writer2.drain()
            await reader2.readuntil(b"\r\n\r\n")
            frames2 = await read_sse(reader2, "stream.close")
            writer2.close()
            replayed_ids = [f[0] for f in frames2 if f[0] is not None]
            assert min(replayed_ids) > reconnect_after
            assert [f[1] for f in frames2].count("job.result") == 1
        finally:
            await app.stop()
    asyncio.run(main())


def test_sse_payloads_byte_identical_to_offline_run(tmp_path):
    """Streamed job payloads are exactly what an offline run computes."""
    from repro.fleet import CampaignSpec, run_campaign
    from repro.fleet.spec import canonical_json

    async def main():
        app, client = await started_app(tmp_path)
        try:
            _, _, body = await client.post("/v1/campaigns", dict(SMALL))
            cid = json.loads(body)["id"]
            reader, writer = await asyncio.open_connection(
                client.host, client.port)
            writer.write(f"GET /v1/campaigns/{cid}/events HTTP/1.1\r\n"
                         f"Host: x\r\n\r\n".encode())
            await writer.drain()
            await reader.readuntil(b"\r\n\r\n")
            frames = await read_sse(reader, "stream.close")
            writer.close()
            return [json.loads(f[2]) for f in frames
                    if f[1] == "job.result"]
        finally:
            await app.stop()
    streamed = asyncio.run(main())
    offline = run_campaign(CampaignSpec(**SMALL), workers=0,
                           campaign_dir=str(tmp_path / "offline"))
    by_job = {r["job_id"]: r for r in offline.records}
    assert {s["job_id"] for s in streamed} == set(by_job)
    for s in streamed:
        ref = by_job[s["job_id"]]
        assert s["digest"] == ref["digest"]
        assert canonical_json(s["payload"]) == \
            canonical_json(ref["payload"])
