"""Interrupt router + CPU interrupt handling: priorities, nesting, routing."""

import pytest

from repro.soc.config import tc1797_config
from repro.soc.cpu import isa
from repro.soc.device import Soc
from repro.soc.kernel import signals
from repro.soc.memory import map as amap
from repro.soc.peripherals.basic import PeriodicTimer
from repro.workloads.program import ProgramBuilder


def build_isr_program(counter_addrs):
    """main halts; one ISR per entry storing to a distinct address."""
    builder = ProgramBuilder(code_base=amap.PSPR_BASE)
    builder.function("main").halt()
    for name, addr in counter_addrs.items():
        isr = builder.function(name)
        isr.alu(3)
        isr.store(isa.FixedAddr(addr))
        isr.rfe()
    return builder.assemble()


def make_soc_with_isr(priorities=(5,), period=100):
    soc = Soc(tc1797_config(), seed=3)
    names = {f"isr{i}": amap.DSPR_BASE + 0x10 * i
             for i in range(len(priorities))}
    program = build_isr_program(names)
    soc.load_program(program)
    srns = []
    for i, priority in enumerate(priorities):
        srn = soc.icu.add_srn(f"src{i}", priority)
        soc.cpu.set_vector(srn.id, f"isr{i}")
        srns.append(srn)
    return soc, srns


def test_srn_priority_must_be_positive(soc):
    with pytest.raises(ValueError):
        soc.icu.add_srn("bad", 0)


def test_interrupt_wakes_halted_cpu():
    soc, (srn,) = make_soc_with_isr()
    soc.add_peripheral(PeriodicTimer("t", soc.hub, soc.icu, srn.id, 50))
    soc.run(500)
    assert srn.taken_count >= 8
    assert soc.cpu.retired >= 8 * 4   # 4 instructions per ISR
    assert soc.cpu.halted              # back to halt after each service


def test_higher_priority_served_first():
    soc, (low, high) = make_soc_with_isr(priorities=(3, 9))
    soc._ensure_order()
    soc.icu.raise_request(low.id)
    soc.icu.raise_request(high.id)
    soc.run(30)
    # high fired first: its taken must precede low's
    assert high.taken_count == 1
    assert low.taken_count == 1
    assert soc.hub.total(signals.TC_IRQ_ENTRY) == 2


def test_no_preemption_by_equal_or_lower_priority():
    soc, (a, b) = make_soc_with_isr(priorities=(5, 5))
    soc._ensure_order()
    soc.icu.raise_request(a.id)
    soc.run(3)   # a's ISR entered
    soc.icu.raise_request(b.id)
    in_isr_prio = soc.cpu.current_priority
    assert in_isr_prio == 5
    soc.run(60)
    assert b.taken_count == 1   # served after a finished, not nested


def test_nesting_by_higher_priority():
    # slow low-priority ISR gets preempted by a fast high one
    builder = ProgramBuilder(code_base=amap.PSPR_BASE)
    builder.function("main").halt()
    slow = builder.function("slow_isr")
    slow.loop(50, lambda f: f.alu(2))
    slow.store(isa.FixedAddr(amap.DSPR_BASE + 0x20))
    slow.rfe()
    fast = builder.function("fast_isr")
    fast.alu(1)
    fast.rfe()
    soc = Soc(tc1797_config(), seed=3)
    soc.load_program(builder.assemble())
    low = soc.icu.add_srn("low", 2)
    high = soc.icu.add_srn("high", 8)
    soc.cpu.set_vector(low.id, "slow_isr")
    soc.cpu.set_vector(high.id, "fast_isr")
    soc._ensure_order()
    soc.icu.raise_request(low.id)
    soc.run(20)       # inside slow ISR now
    assert soc.cpu.current_priority == 2
    soc.icu.raise_request(high.id)
    soc.run(15)
    assert high.taken_count == 1
    soc.run(300)
    assert soc.cpu.halted   # both unwound


def test_unbound_srn_not_dispatched():
    soc = Soc(tc1797_config(), seed=3)
    builder = ProgramBuilder(code_base=amap.PSPR_BASE)
    builder.function("main").halt()
    soc.load_program(builder.assemble())
    srn = soc.icu.add_srn("orphan", 5)
    soc._ensure_order()
    soc.icu.raise_request(srn.id)
    soc.run(50)
    assert srn.taken_count == 0
    assert srn.pending


def test_dma_routed_srn_triggers_dma_not_cpu():
    from repro.soc.dma.controller import DmaChannelConfig
    soc = Soc(tc1797_config(), seed=3)
    builder = ProgramBuilder(code_base=amap.PSPR_BASE)
    builder.function("main").halt()
    soc.load_program(builder.assemble())
    srn = soc.icu.add_srn("dmareq", 4, core="dma", dma_channel=0)
    soc.dma.configure_channel(0, DmaChannelConfig(
        src=amap.LMU_BASE, dst=amap.DSPR_BASE + 0x100, moves=4))
    soc._ensure_order()
    soc.icu.raise_request(srn.id)
    soc.run(100)
    assert soc.hub.total(signals.DMA_MOVE) == 4
    assert soc.hub.total(signals.TC_IRQ_ENTRY) == 0


def test_irq_cycles_counted_at_elevated_priority():
    soc, (srn,) = make_soc_with_isr()
    soc.add_peripheral(PeriodicTimer("t", soc.hub, soc.icu, srn.id, 100))
    soc.run(1000)
    assert soc.hub.total(signals.TC_IRQ_CYCLES) > 0


def test_icu_reset_clears_pending():
    soc, (srn,) = make_soc_with_isr()
    soc.icu.raise_request(srn.id)
    soc.icu.reset()
    assert not srn.pending
    assert srn.raised_count == 0
