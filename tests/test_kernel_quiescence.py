"""Quiescence-aware kernel: skip-list scheduling vs the naive oracle.

The contract under test: a component that answers ``idle_until`` is
promising its tick is a no-op before that cycle, and the quiescent kernel
may therefore skip it — *observationally* the two kernels must be
indistinguishable (oracle totals, CPU state, trace bytes, halt
accounting).  Strict-equivalence mode runs the naive order while auditing
every skip claim, so an unsound ``idle_until`` is caught deterministically
instead of silently corrupting results.
"""

import pytest

from repro.errors import KernelEquivalenceError, WatchdogExpired
from repro.faults.watchdog import SimulationWatchdog
from repro.soc.config import tc1797_config
from repro.soc.kernel import kernel_mode
from repro.soc.kernel.kprof import (KernelProfiler, format_kernel_stats,
                                    format_top_components)
from repro.soc.kernel.simulator import (FOREVER, Component, Simulator,
                                        set_default_kernel)
from repro.workloads import EngineControlScenario, RtosScenario

CYCLES = 30_000


def build(scenario, params, mode, seed=2008):
    with kernel_mode(mode):
        return scenario().build(tc1797_config(), dict(params), seed=seed)


def state(device):
    cpu = device.soc.cpu
    return {
        "oracle": device.soc.hub.snapshot(),
        "cycle": device.soc.sim.cycle,
        "pc": cpu.pc,
        "retired": cpu.retired,
        "halt_cycles": cpu.halt_cycles,
        "mcds_messages": device.mcds.total_messages,
        "mcds_bits": device.mcds.total_bits,
    }


# -- device-level observational equivalence ---------------------------------
@pytest.mark.parametrize("scenario,params", [
    (EngineControlScenario, {}),
    (RtosScenario, {}),
    (RtosScenario, {"idle_halt": True}),
])
def test_quiescent_kernel_matches_naive(scenario, params):
    naive = build(scenario, params, "naive")
    naive.run(CYCLES)
    quiescent = build(scenario, params, "quiescent")
    quiescent.run(CYCLES)
    assert state(quiescent) == state(naive)


@pytest.mark.parametrize("scenario,params", [
    (EngineControlScenario, {}),
    (RtosScenario, {"idle_halt": True}),
])
def test_strict_equivalence_mode_audits_clean(scenario, params):
    naive = build(scenario, params, "naive")
    naive.run(CYCLES)
    strict = build(scenario, params, "strict")
    strict.run(CYCLES)           # would raise on any unsound idle claim
    assert state(strict) == state(naive)
    assert strict.soc.sim.kernel_stats()["kernel"] == "strict"


def test_equivalence_survives_reset():
    devices = []
    for mode in ("naive", "quiescent"):
        device = build(RtosScenario, {"idle_halt": True}, mode)
        device.run(CYCLES)
        device.soc.reset()
        device.run(CYCLES)
        devices.append(device)
    assert state(devices[0]) == state(devices[1])


def test_kernel_stats_accounts_every_cycle():
    device = build(RtosScenario, {"idle_halt": True}, "quiescent")
    device.run(CYCLES)
    stats = device.soc.sim.kernel_stats()
    assert stats["cycles"] == CYCLES
    assert stats["cycles_per_sec"] > 0
    for entry in stats["components"]:
        # every component's ticks + skips tile its lifetime exactly
        assert entry["ticks"] + entry["skipped"] == CYCLES
    by_name = {e["name"]: e for e in stats["components"]}
    assert by_name["tricore"]["skipped"] > 0        # WFI idle actually slept


def test_kernel_profiler_measures_wall_shares():
    device = build(EngineControlScenario, {}, "quiescent")
    sim = device.soc.sim
    with KernelProfiler(sim):
        device.run(5_000)
        stats = sim.kernel_stats()
    cpu = next(e for e in stats["components"] if e["name"] == "tricore")
    assert cpu["wall_s"] > 0
    assert 0 < cpu["wall_share"] <= 1
    rendered = format_kernel_stats(stats)
    assert "tricore" in rendered and "cycles/s" in rendered
    # detached: stats keep counting ticks but drop wall columns
    device.run(1_000)
    stats = sim.kernel_stats()
    assert "wall_s" not in stats["components"][0]


def test_top_components_table_sorted_stable_truncated():
    stats = {"components": [
        {"name": "zeta", "ticks": 10, "wall_s": 0.5},
        {"name": "alpha", "ticks": 20, "wall_s": 0.5},   # wall tie
        {"name": "mid", "ticks": 30, "wall_s": 1.0},
        {"name": "tiny", "ticks": 5, "wall_s": 0.1},
    ]}
    rendered = format_top_components(stats, 3)
    rows = rendered.splitlines()[1:]
    names = [row.split()[1] for row in rows]
    # wall seconds descending, name ascending on ties, truncated to N
    assert names == ["mid", "alpha", "zeta"]
    assert rendered == format_top_components(stats, 3)   # deterministic
    assert "100.0%" not in rows[-1]      # cum% excludes the dropped row
    # without profiler wall times there is nothing to rank
    plain = {"components": [{"name": "a", "ticks": 1}]}
    assert "attach a KernelProfiler" in format_top_components(plain, 3)


# -- strict mode catches liars ----------------------------------------------
class _Liar(Component):
    """Claims eternal quiescence while mutating the oracle every tick."""

    name = "liar"

    def __init__(self, hub):
        self.hub = hub
        self.sid = hub.register("liar.evt")

    def idle_until(self, cycle):
        return FOREVER

    def tick(self, cycle):
        self.hub.emit(self.sid)


def test_strict_mode_catches_unsound_idle_claim():
    sim = Simulator(strict_equivalence=True)
    sim.add(_Liar(sim.hub))
    with pytest.raises(KernelEquivalenceError, match="liar"):
        sim.step(3)


def test_strict_mode_accepts_state_hidden_from_hub():
    class CovertLiar(Component):
        name = "covert"
        shadow = 0

        def idle_until(self, cycle):
            return FOREVER

        def observable_state(self):
            return self.shadow

        def tick(self, cycle):
            self.shadow += 1        # invisible to hub totals, not to audit

    sim = Simulator(strict_equivalence=True)
    sim.add(CovertLiar())
    with pytest.raises(KernelEquivalenceError):
        sim.step(3)


# -- wake ordering around the in-cycle cursor --------------------------------
class _Sleeper(Component):
    """Acts only when poked; sleeps forever otherwise."""

    def __init__(self, name, log):
        self.name = name
        self.log = log
        self.pending = False

    def poke(self):
        self.pending = True
        self.wake()

    def idle_until(self, cycle):
        return None if self.pending else FOREVER

    def tick(self, cycle):
        if self.pending:
            self.pending = False
            self.log.append((cycle, self.name))


class _Poker(Component):
    name = "poker"

    def __init__(self, target, at):
        self.target = target
        self.at = at

    def tick(self, cycle):
        if cycle == self.at:
            self.target.poke()


@pytest.mark.parametrize("sleeper_first", [True, False])
def test_mid_cycle_wake_order_matches_naive(sleeper_first):
    logs = {}
    for mode in ("naive", "quiescent"):
        log = []
        with kernel_mode(mode):
            sim = Simulator()
        sleeper = _Sleeper("s", log)
        if sleeper_first:
            sim.add(sleeper)
            sim.add(_Poker(sleeper, at=10))
        else:
            sim.add(_Poker(sleeper, at=10))
            sim.add(sleeper)
        sim.step(20)
        logs[mode] = log
    # sleeper before the poker: the poke lands after its slot already ran,
    # so it acts the *next* cycle; after the poker: same cycle
    expected_cycle = 11 if sleeper_first else 10
    assert logs["naive"] == logs["quiescent"] == [(expected_cycle, "s")]


def test_external_wake_between_steps():
    log = []
    with kernel_mode("quiescent"):
        sim = Simulator()
    sleeper = sim.add(_Sleeper("s", log))
    sim.step(50)                  # fully quiescent span
    sleeper.poke()                # tool/API access from outside the clock
    sim.step(5)
    assert log == [(50, "s")]


# -- run_until stride + back-off ---------------------------------------------
@pytest.mark.parametrize("check_every", [1, 7, 64, 1000])
def test_run_until_stride_is_bit_identical(check_every):
    with kernel_mode("quiescent"):
        sim = Simulator()
    sim.add(_Sleeper("s", []))    # asleep forever: pure fast-forward span
    ran = sim.run_until(lambda s: s.cycle >= 1234, check_every=check_every)
    assert ran == 1234
    assert sim.cycle == 1234


def test_run_until_stride_matches_hot_loop():
    # the predicate crosses while components are ticking, not fast-forwarding
    for check_every in (1, 13):
        with kernel_mode("quiescent"):
            sim = Simulator()
        log = []

        class Busy(Component):
            def tick(self, cycle):
                log.append(cycle)

        sim.add(Busy())
        ran = sim.run_until(lambda s: s.cycle >= 100,
                            check_every=check_every)
        assert ran == 100
        assert log == list(range(100))


def test_run_until_rejects_bad_stride():
    sim = Simulator()
    with pytest.raises(Exception):
        sim.run_until(lambda s: True, check_every=0)


# -- watchdog accounting through fast-forward --------------------------------
def test_watchdog_cycle_budget_fires_through_fast_forward():
    device = build(RtosScenario, {"idle_halt": True}, "quiescent")
    watchdog = SimulationWatchdog(max_cycles=7_000)
    with pytest.raises(WatchdogExpired):
        with watchdog.guard(device):
            device.run(1_000_000)
    # the skipped spans counted: expiry at the budget, not at the horizon
    assert device.soc.sim.cycle == 7_000
    assert watchdog.expirations == 1


def test_watchdog_budget_expiry_cycle_matches_naive():
    cycles = {}
    for mode in ("naive", "quiescent"):
        device = build(RtosScenario, {"idle_halt": True}, mode)
        watchdog = SimulationWatchdog(max_cycles=5_500)
        with pytest.raises(WatchdogExpired):
            with watchdog.guard(device):
                device.run(100_000)
        cycles[mode] = device.soc.sim.cycle
    assert cycles["naive"] == cycles["quiescent"]


# -- reset + cached rng handles (in-place reseed) ----------------------------
class _RngConsumer(Component):
    """Caches its rng() handle at construction, like CanNode does."""

    name = "rng_consumer"

    def __init__(self, sim, log):
        self.rng = sim.rng("consumer")   # handle cached once
        self.log = log

    def tick(self, cycle):
        self.log.append(round(self.rng.random(), 12))


def test_reset_rewinds_cached_rng_handles():
    def sequence():
        sim = Simulator(seed=77)
        log = []
        sim.add(_RngConsumer(sim, log))
        sim.step(40)
        first = list(log)
        sim.reset()
        log.clear()
        sim.step(40)
        return first, list(log)

    first_a, second_a = sequence()
    first_b, second_b = sequence()
    assert first_a == first_b
    assert second_a == second_b
    # in-place reseed: the cached handle rewinds to the same stream
    assert first_a == second_a


def test_device_reset_sequences_are_deterministic():
    def sequence():
        device = build(RtosScenario, {}, "quiescent", seed=11)
        device.run(15_000)
        device.soc.reset()
        device.run(15_000)
        return state(device)

    assert sequence() == sequence()


# -- mode plumbing ------------------------------------------------------------
def test_set_default_kernel_round_trips():
    previous = set_default_kernel("naive")
    try:
        assert Simulator().kernel == "naive"
        with kernel_mode("strict"):
            assert Simulator()._mode == "strict"
        assert Simulator().kernel == "naive"
    finally:
        set_default_kernel(previous)
    assert Simulator().kernel == previous
