"""MemorySystem: per-region latency chains and observation hooks."""

import pytest

from repro.soc.config import tc1797_config
from repro.soc.kernel import signals
from repro.soc.kernel.hub import EventHub
from repro.soc.memory import map as amap
from repro.soc.memory.map import AddressMap
from repro.soc.memory.system import MemorySystem


def make_memory(config=None):
    cfg = config if config is not None else tc1797_config()
    hub = EventHub()
    mem = MemorySystem(cfg, hub, AddressMap.for_config(cfg))
    return mem, hub, cfg


def test_dspr_single_cycle():
    mem, hub, _ = make_memory()
    assert mem.read(10, amap.DSPR_BASE + 4) == 11
    assert mem.write(20, amap.DSPR_BASE + 8) == 21
    assert hub.total(signals.DSPR_ACCESS) == 2


def test_pspr_fetch_single_cycle():
    mem, hub, _ = make_memory()
    assert mem.fetch(10, amap.PSPR_BASE + 0x20) == 11
    assert hub.total(signals.PSPR_ACCESS) == 1


def test_cached_fetch_miss_then_hit():
    mem, hub, _ = make_memory()
    addr = amap.PFLASH_BASE + 0x40
    first = mem.fetch(0, addr)
    assert first > 1
    assert hub.total(signals.ICACHE_MISS) == 1
    second = mem.fetch(first, addr)
    assert second == first + 1
    assert hub.total(signals.ICACHE_HIT) == 1


def test_uncached_segment_bypasses_icache():
    mem, hub, _ = make_memory()
    mem.fetch(0, amap.PFLASH_UNCACHED_BASE + 0x40)
    assert hub.total(signals.ICACHE_ACCESS) == 0
    assert (hub.total(signals.PFLASH_CODE_ACCESS)
            + hub.total(signals.PFLASH_BUF_HIT_CODE)) == 1


def test_icache_disabled_goes_to_flash():
    cfg = tc1797_config()
    cfg.icache.enabled = False
    mem, hub, _ = make_memory(cfg)
    mem.fetch(0, amap.PFLASH_BASE + 0x40)
    assert hub.total(signals.ICACHE_ACCESS) == 0


def test_flash_data_read_without_dcache():
    mem, hub, _ = make_memory()
    done = mem.read(0, amap.PFLASH_BASE + 0x1000)
    assert done > 1
    assert hub.total(signals.PFLASH_DATA_ACCESS) == 1
    assert hub.total(signals.DCACHE_ACCESS) == 0


def test_dcache_enabled_caches_flash_data():
    cfg = tc1797_config()
    cfg.dcache.enabled = True
    mem, hub, _ = make_memory(cfg)
    addr = amap.PFLASH_BASE + 0x1000
    first = mem.read(0, addr)
    second = mem.read(first, addr)
    assert second == first + 1
    assert hub.total(signals.DCACHE_HIT) == 1
    assert hub.total(signals.DCACHE_MISS) == 1


def test_lmu_goes_over_lmb():
    mem, hub, cfg = make_memory()
    done = mem.read(0, amap.LMU_BASE + 0x10)
    assert done == cfg.memory.lmu_latency
    assert hub.total(signals.LMU_ACCESS) == 1
    assert hub.total(signals.LMB_XFER) == 1


def test_peripheral_read_over_spb():
    mem, hub, cfg = make_memory()
    done = mem.read(0, amap.PERIPH_BASE + 0x100)
    assert done == cfg.bus.spb_latency
    assert hub.total(signals.SPB_XFER) == 1


def test_dflash_read_slow():
    mem, hub, cfg = make_memory()
    done = mem.read(0, amap.DFLASH_BASE + 0x10)
    assert done == cfg.memory.dflash_latency
    assert hub.total(signals.DFLASH_ACCESS) == 1


def test_dflash_write_posted_but_occupies():
    mem, hub, cfg = make_memory()
    free = mem.write(0, amap.DFLASH_BASE + 0x10)
    assert free == 1                      # posted
    # a read right behind the program pulse queues
    done = mem.read(1, amap.DFLASH_BASE + 0x20)
    assert done > cfg.memory.dflash_latency + 1


def test_posted_write_waits_only_for_queue():
    mem, hub, cfg = make_memory()
    mem.write(0, amap.PERIPH_BASE + 0x100)
    free = mem.write(0, amap.PERIPH_BASE + 0x104)
    assert free == 1 + cfg.bus.spb_occupancy


def test_flash_write_rejected():
    mem, _, _ = make_memory()
    with pytest.raises(ValueError):
        mem.write(0, amap.PFLASH_BASE + 0x100)


def test_fetch_from_data_region_rejected():
    mem, _, _ = make_memory()
    with pytest.raises(ValueError):
        mem.fetch(0, amap.DSPR_BASE)


def test_overlay_read_uses_emem_path():
    cfg = tc1797_config()
    mem, hub, _ = make_memory(cfg)
    start = amap.PFLASH_BASE + 0x5000
    mem.map.add_overlay(start, 0x100)
    done = mem.read(0, start + 4)
    assert done == MemorySystem.EMEM_LATENCY
    assert hub.total(signals.PFLASH_DATA_ACCESS) == 0


def test_data_watchers_see_reads_and_writes():
    mem, _, _ = make_memory()
    seen = []
    mem.watchers.append(lambda c, a, w, m: seen.append((c, a, w, m)))
    mem.read(5, amap.DSPR_BASE + 4, "tc")
    mem.write(6, amap.LMU_BASE + 8, "dma")
    assert seen == [(5, amap.DSPR_BASE + 4, False, "tc"),
                    (6, amap.LMU_BASE + 8, True, "dma")]


def test_fetch_watchers_see_fetches():
    mem, _, _ = make_memory()
    seen = []
    mem.fetch_watchers.append(lambda c, a, m: seen.append((c, a, m)))
    mem.fetch(3, amap.PFLASH_BASE + 0x40, "tc")
    assert seen == [(3, amap.PFLASH_BASE + 0x40, "tc")]


def test_reset_restores_cold_state():
    mem, hub, _ = make_memory()
    addr = amap.PFLASH_BASE + 0x40
    mem.fetch(0, addr)
    mem.reset()
    assert not mem.icache.contains(addr)
