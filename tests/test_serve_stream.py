"""SSE framing, replayable event buffers, and the obs-log bridge."""

import asyncio
import json
import threading

from repro.obs.events import EventLog
from repro.serve import EventBuffer, EventLogBridge, encode_comment, \
    encode_frame


# -- frame encoding ----------------------------------------------------------
def test_frame_minimal():
    assert encode_frame("hello") == b"data: hello\n\n"


def test_frame_full():
    frame = encode_frame("x", event="job.result", event_id=7,
                         retry_ms=1000)
    assert frame == (b"retry: 1000\n"
                     b"id: 7\n"
                     b"event: job.result\n"
                     b"data: x\n\n")


def test_frame_multiline_data_splits_per_spec():
    frame = encode_frame("line1\nline2\nline3")
    assert frame == b"data: line1\ndata: line2\ndata: line3\n\n"


def test_comment_frame():
    assert encode_comment() == b": keepalive\n\n"
    assert encode_comment("ping") == b": ping\n\n"


# -- event buffer ------------------------------------------------------------
def test_buffer_ids_are_monotonic_from_one():
    buf = EventBuffer()
    assert buf.push("a", "1") == 1
    assert buf.push("b", "2") == 2
    assert buf.last_id == 2


def test_since_replays_after_cursor():
    buf = EventBuffer()
    for i in range(5):
        buf.push("ev", str(i))
    events, closed = buf.since(0)
    assert [e[0] for e in events] == [1, 2, 3, 4, 5]
    assert not closed
    events, _ = buf.since(3)
    assert [(i, d) for i, _, d in events] == [(4, "3"), (5, "4")]
    events, _ = buf.since(99)
    assert events == []


def test_close_is_visible_to_readers():
    buf = EventBuffer()
    buf.push("ev", "x")
    buf.close()
    events, closed = buf.since(0)
    assert closed and len(events) == 1


def test_overflow_drops_and_counts():
    buf = EventBuffer(max_events=2)
    for i in range(5):
        buf.push("ev", str(i))
    assert buf.dropped == 3
    assert buf.last_id == 5               # ids keep advancing
    events, _ = buf.since(0)
    assert [e[0] for e in events] == [1, 2]


def test_wait_returns_immediately_when_data_pending():
    buf = EventBuffer()
    buf.push("ev", "x")

    async def check():
        return await buf.wait(0, timeout=0.01)

    assert asyncio.run(check()) is True


def test_wait_times_out_when_quiet():
    buf = EventBuffer()

    async def check():
        return await buf.wait(0, timeout=0.01)

    assert asyncio.run(check()) is False


def test_wait_woken_by_cross_thread_push():
    buf = EventBuffer()

    async def waiter():
        loop = asyncio.get_running_loop()
        loop.call_later(0.01, lambda: threading.Thread(
            target=buf.push, args=("ev", "x")).start())
        return await buf.wait(0, timeout=5.0)

    assert asyncio.run(waiter()) is True
    assert buf.last_id == 1


def test_wait_woken_by_close():
    buf = EventBuffer()

    async def waiter():
        loop = asyncio.get_running_loop()
        loop.call_later(0.01, buf.close)
        return await buf.wait(0, timeout=5.0)

    assert asyncio.run(waiter()) is True


# -- obs bridge --------------------------------------------------------------
def test_bridge_carries_event_names_and_payloads():
    buf = EventBuffer()
    log = EventLog("cmp-test", stream=EventLogBridge(buf))
    log.emit("job.result", job_id="j1", status="ok")
    log.emit("campaign.completed", executed=3)
    events, _ = buf.since(0)
    assert [e[1] for e in events] == ["job.result", "campaign.completed"]
    first = json.loads(events[0][2])
    assert first["run_id"] == "cmp-test"
    assert first["job_id"] == "j1" and first["status"] == "ok"


def test_bridge_tolerates_non_json_writes():
    buf = EventBuffer()
    bridge = EventLogBridge(buf)
    bridge.write("not json\n")
    bridge.write("   \n")                 # whitespace only: ignored
    bridge.flush()
    events, _ = buf.since(0)
    assert [(e[1], e[2]) for e in events] == [("message", "not json")]
