"""Profile analysis: dip windows and root-cause ranking."""

import numpy as np
import pytest

from repro.core.profiling.analysis import (Window, diagnose,
                                           find_low_windows,
                                           rate_timeline_table)
from repro.core.profiling.session import ProfileResult, SeriesData
from repro.core.profiling.spec import ParameterSpec
from repro.mcds.counters import CYCLES


def make_series(name, values, resolution=100, basis="tc.instr_executed",
                step=100):
    data = SeriesData(ParameterSpec(name, ("e",), resolution, basis))
    for i, value in enumerate(values):
        data.append((i + 1) * step, value)
    return data


def make_result(series_list):
    return ProfileResult({s.spec.name: s for s in series_list},
                         cycles_run=10_000, trace_bits=1000,
                         frequency_mhz=180, lost_messages=0)


def test_find_low_windows_simple():
    # rates: resolution 100 -> values/100
    series = make_series("ipc", [150, 140, 40, 30, 45, 150, 20, 160])
    windows = find_low_windows(series, threshold_rate=1.0)
    assert len(windows) == 2
    assert windows[0].start == 300 and windows[0].end == 500
    assert windows[1].start == 700 and windows[1].end == 700


def test_find_low_windows_min_samples():
    series = make_series("ipc", [150, 40, 150, 40, 30, 150])
    windows = find_low_windows(series, 1.0, min_samples=2)
    assert len(windows) == 1
    assert windows[0].length == 100


def test_trailing_window_closed():
    series = make_series("ipc", [150, 150, 40, 30])
    windows = find_low_windows(series, 1.0)
    assert windows[-1].end == 400


def test_diagnose_ranks_injected_cause_first():
    ipc = make_series("tc.ipc", [150, 150, 40, 40, 150, 150])
    # miss rate spikes exactly inside the dip
    misses = make_series("icache.miss_rate", [2, 2, 30, 28, 2, 2])
    # an uncorrelated flat parameter
    flat = make_series("dspr.access_rate", [20, 21, 20, 19, 20, 21])
    result = make_result([ipc, misses, flat])
    diagnoses = diagnose(result, ipc_threshold=1.0)
    assert len(diagnoses) == 1
    assert diagnoses[0].primary_cause == "icache.miss_rate"
    assert diagnoses[0].ipc_inside < diagnoses[0].ipc_overall


def test_diagnose_no_dips():
    ipc = make_series("tc.ipc", [150, 150, 150])
    result = make_result([ipc])
    assert diagnose(result, ipc_threshold=1.0) == []


def test_timeline_table_renders():
    ipc = make_series("tc.ipc", list(range(100, 160, 10)))
    result = make_result([ipc])
    table = rate_timeline_table(result, ["tc.ipc"], buckets=3)
    assert "tc.ipc" in table
    assert len(table.splitlines()) == 4


def test_periodicity_detected():
    from repro.core.profiling.analysis import estimate_periodicity
    # spike every 8 samples, 100 cycles apart -> period 800 cycles
    values = [(40 if i % 8 == 0 else 2) for i in range(64)]
    series = make_series("x", values, step=100)
    period = estimate_periodicity(series)
    assert period is not None
    assert period == pytest.approx(800, rel=0.15)


def test_periodicity_none_for_flat_series():
    from repro.core.profiling.analysis import estimate_periodicity
    series = make_series("x", [10] * 40)
    assert estimate_periodicity(series) is None


def test_periodicity_none_for_short_series():
    from repro.core.profiling.analysis import estimate_periodicity
    series = make_series("x", [1, 2, 3])
    assert estimate_periodicity(series) is None


def test_periodicity_on_simulated_anomaly():
    from repro.core.profiling.analysis import estimate_periodicity
    from repro.core.profiling import ProfilingSession, spec
    from repro.soc.config import tc1797_config
    from repro.workloads.engine import EngineControlScenario
    device = EngineControlScenario().build(
        tc1797_config(), {"anomaly": True, "anomaly_period": 30_000},
        seed=51)
    session = ProfilingSession(device, [spec.ipc(resolution=512)])
    result = session.run(300_000)
    period = estimate_periodicity(result["tc.ipc"])
    assert period is not None
    assert period == pytest.approx(30_000, rel=0.15)


def test_compare_profiles_quantifies_improvement():
    """Paper Sec. 5: measure the result of an improvement quantitatively."""
    from repro.core.profiling import ProfilingSession, spec
    from repro.core.profiling.analysis import compare_profiles
    from repro.soc.config import tc1797_config
    from repro.workloads.engine import EngineControlScenario

    def profile(tables_in_dspr):
        device = EngineControlScenario().build(
            tc1797_config(),
            {"tables_in_dspr": tables_in_dspr, "background_blocks": 8},
            seed=65)
        session = ProfilingSession(device, [
            spec.ipc(), spec.flash_data_access_rate()])
        return session.run(60_000)

    before = profile(False)
    after = profile(True)
    table = compare_profiles(before, after)
    assert "flash.data_access_rate" in table
    assert "delta" in table
    # the optimization is visible in the diff
    assert (after.mean_rate("flash.data_access_rate")
            < before.mean_rate("flash.data_access_rate"))


def test_compare_profiles_disjoint_names():
    from repro.core.profiling.analysis import compare_profiles
    from repro.core.profiling.session import ProfileResult
    a = make_result([make_series("x", [1, 2])])
    b = make_result([make_series("y", [1, 2])])
    table = compare_profiles(a, b)
    assert "not compared" in table
