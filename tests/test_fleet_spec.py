"""Fleet job specs: content hashing, matrix building, deterministic shards."""

import pytest

from repro.fleet import (CampaignJob, assign_shards, build_matrix,
                         job_digest)
from repro.fleet import spec as fleet_spec
from repro.workloads import CustomerGenerator


def make_job(**overrides):
    base = dict(name="c0", domain="engine", device="tc1797",
                params={"rpm": 4500, "use_pcp": True}, cycles=50_000,
                seed=9)
    base.update(overrides)
    return CampaignJob(**base)


def test_digest_stable_across_equal_specs():
    assert make_job().digest == make_job().digest
    # param dict insertion order must not matter (canonical JSON)
    a = make_job(params={"rpm": 4500, "use_pcp": True})
    b = make_job(params={"use_pcp": True, "rpm": 4500})
    assert a.digest == b.digest


@pytest.mark.parametrize("change", [
    {"cycles": 50_001}, {"seed": 10}, {"device": "tc1767"},
    {"params": {"rpm": 5500}}, {"ipc_resolution": 512},
    {"fault": "crash"},
])
def test_digest_changes_with_spec(change):
    assert make_job().digest != make_job(**change).digest


def test_digest_changes_with_package_version(monkeypatch):
    before = make_job().digest
    monkeypatch.setattr(fleet_spec, "__version__", "99.0.0")
    assert make_job().digest != before


def test_job_id_greppable():
    job = make_job()
    assert job.job_id.startswith("c0-")
    assert job.job_id.endswith(job.digest[:10])


def test_round_trip_dict():
    job = make_job(fault="flaky:2")
    assert CampaignJob.from_dict(job.to_dict()) == job
    assert job_digest(CampaignJob.from_dict(job.to_dict())) == job.digest


def test_build_matrix_covers_population():
    customers = CustomerGenerator(seed=42).generate(5)
    jobs = build_matrix(customers, devices=("tc1797", "tc1767"),
                        cycle_budgets=(10_000, 20_000), seed=7)
    assert len(jobs) == 5 * 2 * 2
    assert len({job.name for job in jobs}) == len(jobs)
    # labels carry the matrix axes when they fan out
    assert any("@tc1767" in job.name for job in jobs)
    assert any("/20000" in job.name for job in jobs)
    # customer parameters are carried verbatim
    by_base = {job.name.split("@")[0] for job in jobs}
    assert {c.name for c in customers} == by_base


def test_build_matrix_single_axis_keeps_plain_names():
    customers = CustomerGenerator(seed=42).generate(3)
    jobs = build_matrix(customers)
    assert [job.name for job in jobs] == [c.name for c in customers]


def test_assign_shards_is_deterministic_and_complete():
    customers = CustomerGenerator(seed=42).generate(12)
    jobs = build_matrix(customers, cycle_budgets=(10_000,))
    shards_a = assign_shards(jobs, 4)
    shards_b = assign_shards(list(reversed(jobs)), 4)
    # same partition no matter the input order
    assert [[j.job_id for j in s] for s in shards_a] == \
           [[j.job_id for j in s] for s in shards_b]
    flat = [job.job_id for shard in shards_a for job in shard]
    assert sorted(flat) == sorted(job.job_id for job in jobs)
    # shard membership is independent of the other jobs present
    solo = assign_shards(jobs[:1], 4)
    assert solo[0][0].job_id in flat


def test_assign_shards_bounds():
    jobs = build_matrix(CustomerGenerator(seed=42).generate(3))
    assert len(assign_shards(jobs, 1)) == 1
    assert sum(len(s) for s in assign_shards(jobs, 64)) == 3
    with pytest.raises(ValueError):
        assign_shards(jobs, 0)


def test_duplicate_labels_rejected():
    customers = CustomerGenerator(seed=42).generate(2)
    customers[1].name = customers[0].name
    with pytest.raises(ValueError):
        build_matrix(customers)
