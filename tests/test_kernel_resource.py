"""TimedResource: busy-until semantics and contention accounting."""

from repro.soc.kernel.hub import EventHub
from repro.soc.kernel.resource import TimedResource


def test_idle_resource_serves_immediately():
    res = TimedResource("r", occupancy=3)
    wait, done = res.access(10)
    assert wait == 0
    assert done == 13
    assert res.busy_until == 13


def test_back_to_back_requests_queue():
    res = TimedResource("r", occupancy=3)
    res.access(10)
    wait, done = res.access(11)
    assert wait == 2        # had to wait until cycle 13
    assert done == 16


def test_latency_longer_than_occupancy():
    res = TimedResource("r", occupancy=1, latency=4)
    wait, done = res.access(0)
    assert done == 4
    # resource frees after occupancy, not latency
    wait, done = res.access(1)
    assert wait == 0
    assert done == 5


def test_contention_signal_emitted_with_wait_cycles():
    hub = EventHub()
    res = TimedResource("r", occupancy=5, hub=hub, contention_signal="r.wait")
    res.access(0)
    res.access(1)
    assert hub.total("r.wait") == 4
    res.access(100)
    assert hub.total("r.wait") == 4  # no new contention


def test_per_call_occupancy_override():
    res = TimedResource("r", occupancy=2)
    wait, done = res.access(0, occupancy=10)
    assert res.busy_until == 10
    assert done == 2  # latency defaults to base latency, not the override


def test_peek_wait_does_not_consume():
    res = TimedResource("r", occupancy=4)
    res.access(0)
    assert res.peek_wait(1) == 3
    assert res.peek_wait(10) == 0
    assert res.total_grants == 1


def test_reserve_until_extends_busy():
    res = TimedResource("r", occupancy=1)
    res.reserve_until(20)
    wait, _ = res.access(5)
    assert wait == 15
    res.reserve_until(10)  # earlier reservation cannot shrink busy window
    assert res.busy_until >= 20


def test_stats_and_reset():
    res = TimedResource("r", occupancy=3)
    res.access(0)
    res.access(0)
    assert res.total_grants == 2
    assert res.total_waits == 3
    res.reset()
    assert res.total_grants == 0
    assert res.total_waits == 0
    assert res.busy_until == 0
