"""Architecture options: catalog integrity and trace-replay models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.optimization import (full_catalog, hardware_options,
                                     software_options)
from repro.core.optimization.cpi import CpiStack
from repro.core.optimization.model import (TraceCaptures, miss_stream,
                                           replay_cache, replay_line_buffer,
                                           share_in_ranges)
from repro.core.optimization.options import ProfileContext
from repro.soc.config import tc1797_config
from repro.soc.kernel import signals


def make_context(captures=None, hot_ranges=()):
    cfg = tc1797_config()
    counts = {
        signals.TC_INSTR: 100_000,
        signals.TC_STALL_FETCH: 15_000,
        signals.TC_STALL_LOAD: 20_000,
        signals.TC_STALL_STORE: 500,
        signals.TC_BRANCH_TAKEN: 3_000,
        signals.TC_CSA: 500,
        signals.TC_IRQ_ENTRY: 100,
        signals.TC_IRQ_CYCLES: 8_000,
        signals.PFLASH_DATA_ACCESS: 4_000,
        signals.PFLASH_BUF_HIT_DATA: 200,
        signals.PFLASH_PORT_CONFLICT: 800,
        signals.SPB_CONTENTION: 300,
    }
    stack = CpiStack.from_counts(counts, cycles=140_000, config=cfg)
    return ProfileContext(cfg, 140_000, counts, stack, captures, hot_ranges)


# --- catalog integrity ---------------------------------------------------------
def test_catalog_unique_keys_and_positive_costs():
    options = full_catalog()
    keys = [o.key for o in options]
    assert len(set(keys)) == len(keys)
    assert all(o.area_cost >= 1.0 for o in options)
    assert all(o.kind in ("hardware", "software") for o in options)


def test_hardware_options_mutate_config_only():
    for option in hardware_options():
        cfg = tc1797_config()
        params = {"tables_in_dspr": False}
        option.apply(cfg, params)
        assert params == {"tables_in_dspr": False}


def test_software_options_mutate_params_only():
    for option in software_options():
        cfg = tc1797_config()
        reference = tc1797_config()
        params = {}
        option.apply(cfg, params)
        assert params            # something set
        assert cfg.icache.size_bytes == reference.icache.size_bytes


def test_apply_effects():
    cfg = tc1797_config()
    by_key = {o.key: o for o in hardware_options()}
    by_key["icache_x2"].apply(cfg, {})
    assert cfg.icache.size_bytes == 32 * 1024
    by_key["dcache_4k"].apply(cfg, {})
    assert cfg.dcache.enabled
    by_key["banks_x4"].apply(cfg, {})
    assert cfg.flash.banks == 4


def test_predictions_without_captures_are_sane():
    ctx = make_context()
    for option in full_catalog():
        speedup = option.predict(ctx)
        assert 1.0 <= speedup < 2.0, option.key


def test_predictions_with_captures():
    captures = TraceCaptures((0x8000_0000, 0x8040_0000))
    # fetch trace: cyclic walk over 24 KB (beats 16 KB icache)
    captures.fetch_addresses = [0x8000_0000 + (i * 32) % (24 * 1024)
                                for i in range(40_000)]
    # data trace: heavy reuse of two table lines
    captures.data_addresses = [0x8010_0000 + (i % 16) * 4
                               for i in range(5_000)]
    ctx = make_context(captures,
                       hot_ranges=((0x8010_0000, 0x8010_1000),))
    by_key = {o.key: o for o in full_catalog()}
    assert by_key["icache_x2"].predict(ctx) > 1.05   # thrash removed
    assert by_key["dcache_4k"].predict(ctx) > 1.05   # high reuse captured
    assert by_key["tables_dspr"].predict(ctx) > 1.05  # all data in hot range


# --- replay models ------------------------------------------------------------------
def test_replay_cache_counts():
    addrs = [0, 32, 0, 32, 64]
    hits, misses = replay_cache(addrs, size_bytes=128, ways=2)
    assert hits + misses == 5
    assert hits == 2


def test_replay_line_buffer_prefetch_effect():
    # pure sequential stream: prefetch converts every second miss
    addrs = [i * 32 for i in range(100)]
    _, misses_plain = replay_line_buffer(addrs, lines=2, prefetch=False)
    _, misses_pf = replay_line_buffer(addrs, lines=2, prefetch=True)
    assert misses_pf < misses_plain


def test_miss_stream_subset():
    addrs = [0, 32, 0, 4096, 0]
    misses = miss_stream(addrs, size_bytes=64, ways=1)
    assert all(a in addrs for a in misses)
    assert len(misses) <= len(addrs)


def test_share_in_ranges():
    addrs = [10, 20, 30, 100]
    assert share_in_ranges(addrs, [(0, 50)]) == pytest.approx(0.75)
    assert share_in_ranges([], [(0, 50)]) == 0.0
    assert share_in_ranges(addrs, []) == 0.0


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 2**20), min_size=1, max_size=300),
       st.integers(1, 8))
def test_line_buffer_conservation(addresses, lines):
    hits, misses = replay_line_buffer(addresses, lines)
    assert hits + misses == len(addresses)
    # a larger buffer never has more misses (FIFO inclusion on this model)
    hits2, misses2 = replay_line_buffer(addresses, lines + 4)
    assert hits + misses == hits2 + misses2


def test_captures_bounded():
    captures = TraceCaptures((0, 100), max_fetch=3, max_data=2)
    for i in range(10):
        captures.on_fetch(i, i, "tc")
        captures.on_data(i, i, False, "tc")
    assert len(captures.fetch_addresses) == 3
    assert len(captures.data_addresses) == 2


def test_captures_filter_master_and_range():
    captures = TraceCaptures((0, 100))
    captures.on_fetch(0, 50, "pcp")      # wrong master
    captures.on_fetch(0, 500, "tc")      # out of range
    captures.on_data(0, 50, True, "tc")  # write, not read
    assert captures.fetch_addresses == []
    assert captures.data_addresses == []
