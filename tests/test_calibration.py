"""Calibration sessions: parameter blocks, page switching, accounting."""

import pytest

from repro.ed import CalibrationSession, EmulationDevice
from repro.soc.memory import map as amap

from tests.helpers import make_loop_program
from repro.soc.cpu import isa

FUEL = amap.PFLASH_BASE + 0x20_0000
IGN = amap.PFLASH_BASE + 0x8_0000


def make_session(reserve_kb=128):
    device = EmulationDevice(seed=15)
    session = CalibrationSession(device, reserve_kb=reserve_kb)
    return device, session


def test_reserving_shrinks_trace_share():
    device, session = make_session(reserve_kb=128)
    assert device.emem.calibration_kb == 128
    assert device.emem.capacity_bits == (512 - 128) * 1024 * 8


def test_map_block_within_budget():
    device, session = make_session(reserve_kb=64)
    session.map_block("fuel", FUEL, 32 * 1024)
    session.map_block("ign", IGN, 32 * 1024)
    with pytest.raises(ValueError, match="exhausted"):
        session.map_block("more", FUEL + 0x10000, 4096)


def test_duplicate_block_rejected():
    _, session = make_session()
    session.map_block("fuel", FUEL, 4096)
    with pytest.raises(ValueError, match="already mapped"):
        session.map_block("fuel", FUEL, 4096)


def test_page_switching_toggles_overlay():
    device, session = make_session()
    session.map_block("fuel", FUEL, 0x8000)
    assert device.soc.map.classify(FUEL) == amap.PFLASH_CACHED
    session.switch_to_working_page()
    assert device.soc.map.classify(FUEL) == amap.OVERLAY
    session.switch_to_reference_page()
    assert device.soc.map.classify(FUEL) == amap.PFLASH_CACHED


def test_block_mapped_while_on_working_page_is_live():
    device, session = make_session()
    session.switch_to_working_page()
    session.map_block("ign", IGN, 0x4000)
    assert device.soc.map.classify(IGN) == amap.OVERLAY


def test_working_page_changes_application_timing():
    def run(working):
        device = EmulationDevice(seed=15)
        session = CalibrationSession(device, reserve_kb=128)
        session.map_block("fuel", FUEL, 0x8000)
        if working:
            session.switch_to_working_page()
        device.load_program(make_loop_program(
            alu_per_iter=2,
            load_gen=isa.TableAddr(FUEL, 4, 4096, locality=0.5)))
        device.run(20_000)
        return device.cpu.retired
    assert run(True) > run(False)   # overlay RAM beats flash wait states


def test_parameter_writes_and_accounting():
    _, session = make_session()
    session.map_block("fuel", FUEL, 4096)
    session.write_parameter("fuel", 0x10, 1234)
    session.write_parameter("fuel", 0x14, 5678)
    assert session.read_parameter("fuel", 0x10) == 1234
    assert session.read_parameter("fuel", 0x99) is None
    assert session.blocks["fuel"].writes == 2
    assert session.bits_written == 2 * CalibrationSession.WRITE_BITS
    assert session.wire_seconds() > 0


def test_write_outside_block_rejected():
    _, session = make_session()
    session.map_block("fuel", FUEL, 4096)
    with pytest.raises(ValueError, match="outside"):
        session.write_parameter("fuel", 4096, 1)


def test_summary_renders():
    _, session = make_session()
    session.map_block("fuel", FUEL, 4096)
    session.write_parameter("fuel", 0, 7)
    text = session.summary()
    assert "fuel" in text and "reference" in text


def test_calibration_writes_share_the_streaming_wire():
    """Calibration traffic steals DAP budget from the trace drain."""
    from repro.ed.device import EdConfig
    from repro.soc.config import tc1797_config

    def drained(calibrate):
        device = EmulationDevice(EdConfig(
            soc=tc1797_config(), dap_streaming=True,
            dap_bandwidth_mbps=4.0), seed=15)
        session = CalibrationSession(device, reserve_kb=32)
        session.map_block("fuel", FUEL, 0x4000)
        device.load_program(make_loop_program(alu_per_iter=4))
        device.mcds.add_rate_counter("ipc", ["tc.instr_executed"], 64,
                                     basis="cycles")
        for step in range(20):
            device.run(2000)
            if calibrate:
                for offset in range(0, 256, 4):
                    session.write_parameter("fuel", offset, step)
        return len(device.dap.received)

    assert drained(True) < drained(False)
