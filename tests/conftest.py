"""Shared fixtures: small deterministic programs and devices."""

from __future__ import annotations

import pytest

from repro.ed.device import EdConfig, EmulationDevice
from repro.soc.config import tc1797_config
from repro.soc.cpu import isa
from repro.soc.device import Soc
from repro.soc.memory import map as amap
from repro.workloads.program import ProgramBuilder




@pytest.fixture
def soc():
    return Soc(tc1797_config(), seed=1234)


@pytest.fixture
def device():
    return EmulationDevice(EdConfig(soc=tc1797_config()), seed=1234)


@pytest.fixture
def dspr_load():
    return isa.FixedAddr(amap.DSPR_BASE + 0x100)


@pytest.fixture
def flash_load():
    return isa.TableAddr(amap.PFLASH_BASE + 0x10_0000, 4, 4096, locality=0.5)
