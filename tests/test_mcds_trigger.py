"""MCDS trigger block: comparators, watchdogs, boolean logic, state machines."""

import pytest

from repro.mcds.counters import RateCounterStructure
from repro.mcds.trigger import (ABOVE, BELOW, BoolExpr, Condition,
                                CountThreshold, RateThreshold, SignalActive,
                                Trigger, TriggerStateMachine, WindowWatchdog)
from repro.mcds.counters import RawCounter
from repro.soc.kernel.hub import EventHub


class Const(Condition):
    def __init__(self, value):
        self.value = value

    def evaluate(self, cycle):
        return self.value


def make_rate(hub, resolution=10):
    hub.register("ev")
    hub.register("instr")
    return RateCounterStructure("s", hub, ("ev",), resolution, "instr")


def test_rate_threshold_below():
    hub = EventHub()
    structure = make_rate(hub)
    cond = RateThreshold(structure, threshold=5, direction=BELOW)
    assert not cond.evaluate(0)       # no sample yet
    hub.emit(hub.signal_id("ev"), 3)
    hub.emit(hub.signal_id("instr"), 10)
    assert cond.evaluate(1)           # 3 < 5
    hub.emit(hub.signal_id("ev"), 9)
    hub.emit(hub.signal_id("instr"), 10)
    assert not cond.evaluate(2)


def test_rate_threshold_above():
    hub = EventHub()
    structure = make_rate(hub)
    cond = RateThreshold(structure, threshold=5, direction=ABOVE)
    hub.emit(hub.signal_id("ev"), 9)
    hub.emit(hub.signal_id("instr"), 10)
    assert cond.evaluate(0)


def test_rate_threshold_bad_direction():
    hub = EventHub()
    structure = make_rate(hub)
    with pytest.raises(ValueError):
        RateThreshold(structure, 5, "sideways")


def test_count_threshold():
    hub = EventHub()
    hub.register("ev")
    counter = RawCounter("c", hub, ("ev",))
    cond = CountThreshold(counter, 3)
    assert not cond.evaluate(0)
    hub.emit(hub.signal_id("ev"), 3)
    assert cond.evaluate(1)


def test_signal_active_only_in_emission_cycle():
    hub = EventHub()
    hub.register("ev")
    cond = SignalActive(hub, "ev")
    hub.cycle = 5
    hub.emit(hub.signal_id("ev"))
    assert cond.evaluate(5)
    assert not cond.evaluate(6)


def test_window_watchdog_fires_on_absence():
    hub = EventHub()
    hub.register("heartbeat")
    dog = WindowWatchdog(hub, "heartbeat", window=10)
    sid = hub.signal_id("heartbeat")
    fired = []
    for cycle in range(35):
        hub.cycle = cycle
        if cycle in (3, 8):           # regular heartbeats early on
            hub.emit(sid)
        if dog.evaluate(cycle):
            fired.append(cycle)
    # last heartbeat at 8 -> deadline 18, refire every 10 afterwards
    assert fired == [18, 28]
    assert dog.timeouts == 2


def test_window_watchdog_quiet_while_event_present():
    hub = EventHub()
    hub.register("hb")
    dog = WindowWatchdog(hub, "hb", window=5)
    sid = hub.signal_id("hb")
    for cycle in range(40):
        hub.cycle = cycle
        if cycle % 3 == 0:
            hub.emit(sid)
        assert not dog.evaluate(cycle)


def test_bool_composition():
    assert (Const(True) & Const(True)).evaluate(0)
    assert not (Const(True) & Const(False)).evaluate(0)
    assert (Const(False) | Const(True)).evaluate(0)
    assert (~Const(False)).evaluate(0)
    assert BoolExpr(all, [Const(True), Const(True), Const(True)]).evaluate(0)


def test_trigger_edge_actions():
    cond = Const(False)
    entered, left = [], []
    trigger = Trigger("t", cond, on_enter=entered.append,
                      on_leave=left.append)
    trigger.evaluate(0)
    cond.value = True
    trigger.evaluate(1)
    trigger.evaluate(2)       # still active: no second enter
    cond.value = False
    trigger.evaluate(3)
    assert entered == [1]
    assert left == [3]
    assert trigger.fire_count == 1


def test_state_machine_sequencing():
    sm = TriggerStateMachine("capture", "armed")
    seen_anomaly = Const(False)
    done = Const(False)
    log = []
    sm.add_transition("armed", seen_anomaly, "capturing",
                      lambda c: log.append(("start", c)))
    sm.add_transition("capturing", done, "frozen",
                      lambda c: log.append(("stop", c)))
    sm.evaluate(0)
    assert sm.state == "armed"
    seen_anomaly.value = True
    sm.evaluate(1)
    assert sm.state == "capturing"
    sm.evaluate(2)            # 'done' still false
    done.value = True
    sm.evaluate(3)
    assert sm.state == "frozen"
    assert log == [("start", 1), ("stop", 3)]
    assert sm.transitions_taken == 2
    sm.reset()
    assert sm.state == "armed"
