"""Tool access paths: external DAP vs TriCore monitor over MLI."""

import pytest

from repro.ed import EmulationDevice
from repro.ed.tool_access import (compare_paths, external_path_timing,
                                  install_monitor, monitor_path_timing)
from repro.soc.config import tc1797_config
from repro.soc.cpu import isa
from repro.soc.memory import map as amap
from repro.workloads.program import ProgramBuilder


def test_external_path_costs_no_cpu():
    device = EmulationDevice(seed=16)
    timing = external_path_timing(device, words=1024)
    assert timing.cpu_cycles == 0
    assert timing.wire_seconds > 0


def test_monitor_path_costs_cpu_cycles():
    device = EmulationDevice(seed=16)
    timing = monitor_path_timing(device, words=1024)
    assert timing.cpu_cycles > 1024          # at least MLI latency per word
    assert timing.wire_seconds > 0


def test_compare_paths_renders():
    device = EmulationDevice(seed=16)
    table = compare_paths(device, words=256)
    assert "dap/ecerberus/bbb" in table
    assert "mli" in table


def test_monitor_routine_measurably_intrusive():
    """The monitor path's CPU cost is measured, not asserted."""
    def build(with_monitor):
        device = EmulationDevice(seed=16)
        builder = ProgramBuilder()
        main = builder.function("main")
        top = main.label("top")
        main.alu(6)
        main.load(isa.FixedAddr(amap.DSPR_BASE + 0x40))
        main.jump(top)
        finish = None
        if with_monitor:
            finish = install_monitor(device, builder, period=5_000,
                                     words_per_service=32)
        device.load_program(builder.assemble())
        if finish is not None:
            finish()
        device.run(100_000)
        return device

    bare = build(False)
    monitored = build(True)
    # the monitor steals background throughput...
    assert monitored.cpu.retired > bare.cpu.retired * 0.5
    stolen = (monitored.hub.total("tc.irq_cycles"))
    assert stolen > 0
    # ...and its EMEM reads really went over the MLI/LMB path
    assert monitored.hub.total("lmb.transfer") > bare.hub.total(
        "lmb.transfer")


def test_monitor_srn_bound():
    device = EmulationDevice(seed=16)
    builder = ProgramBuilder()
    builder.function("main").halt()
    finish = install_monitor(device, builder, period=2_000)
    device.load_program(builder.assemble())
    srn = finish()
    device.run(30_000)
    assert srn.taken_count >= 10
