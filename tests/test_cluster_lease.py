"""Lease lifecycle edge cases on an injectable clock.

The scenarios the cluster's correctness hangs on, each pinned exactly:
renewal arriving *exactly at* expiry, claiming an expired-but-never-
released lease, a revived stale holder being fenced at every surface
(renew, check, and the result store's fenced append), and a heartbeat
writer that silently dies between renewals.
"""

import os

import pytest

from repro.cluster.lease import FENCE_NAME, Lease, LeaseManager
from repro.errors import StaleLeaseError
from repro.fleet.store import ResultStore
from repro.resilience.journal import AdmissionJournal


class FakeClock:
    def __init__(self, now=1_000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


@pytest.fixture
def clock():
    return FakeClock()


def manager(root, node, clock, ttl_s=10.0, journal=False):
    j = AdmissionJournal(str(root), name="cluster.jsonl") if journal \
        else None
    return LeaseManager(str(root), node, ttl_s=ttl_s, clock=clock,
                        journal=j)


def test_claim_and_read_roundtrip(tmp_path, clock):
    mgr = manager(tmp_path, "n1", clock)
    lease = mgr.claim("batch-0000")
    assert lease is not None
    assert lease.node == "n1" and lease.token == 1
    assert lease.expires_at == clock.now + 10.0
    assert mgr.read("batch-0000") == lease
    assert mgr.leases() == [lease]


def test_live_lease_is_not_claimable(tmp_path, clock):
    a = manager(tmp_path, "n1", clock)
    b = manager(tmp_path, "n2", clock)
    assert a.claim("batch-0000") is not None
    clock.advance(9.999)
    assert b.claim("batch-0000") is None


def test_renewal_exactly_at_expiry_succeeds(tmp_path, clock):
    """Expiry is strict: at exactly ``expires_at`` the holder still holds."""
    a = manager(tmp_path, "n1", clock)
    b = manager(tmp_path, "n2", clock)
    lease = a.claim("batch-0000")
    clock.advance(10.0)             # clock() == expires_at, not past it
    assert b.claim("batch-0000") is None     # not expired yet
    renewed = a.renew(lease)
    assert renewed is not None
    assert renewed.token == lease.token      # renewal never changes tokens
    assert renewed.renewals == 1
    assert renewed.expires_at == clock.now + 10.0


def test_claim_of_expired_but_unreleased_lease(tmp_path, clock):
    """A dead node never releases; one tick past expiry its work migrates."""
    a = manager(tmp_path, "n1", clock, journal=True)
    b = manager(tmp_path, "n2", clock, journal=True)
    old = a.claim("batch-0000")
    clock.advance(10.0 + 1e-6)
    taken = b.claim("batch-0000")
    assert taken is not None
    assert taken.node == "n2"
    assert taken.token > old.token           # fencing token monotonic
    ops = [(r["op"], r.get("previous_node"))
           for r in b.journal.replay() if r["op"] == "takeover"]
    assert ops == [("takeover", "n1")]


def test_revived_stale_holder_is_fenced_everywhere(tmp_path, clock):
    """A paused-then-revived node must be rejected at renew, check, and
    the store append — and the store must stay byte-unchanged."""
    a = manager(tmp_path, "n1", clock)
    b = manager(tmp_path, "n2", clock)
    stale = a.claim("batch-0000")
    clock.advance(11.0)                      # n1 "pauses" past its TTL
    assert b.claim("batch-0000") is not None  # work migrated to n2
    # revived n1: renew refuses...
    assert a.renew(stale) is None
    # ...check raises...
    with pytest.raises(StaleLeaseError):
        a.check(stale)
    # ...and a fenced commit writes nothing
    store = ResultStore(str(tmp_path))
    with pytest.raises(StaleLeaseError):
        store.append({"job_id": "j1", "status": "ok"},
                     fence=a.fence_for(stale))
    assert store.load() == []
    assert not os.path.exists(store.path)
    # the *current* holder's fence still passes
    current = b.read("batch-0000")
    store.append({"job_id": "j1", "status": "ok"},
                 fence=b.fence_for(current))
    assert [r["job_id"] for r in store.load()] == ["j1"]


def test_heartbeat_writer_dying_between_renewals(tmp_path, clock):
    """A holder that renews for a while then silently stops loses the
    lease one TTL after its *last* renewal, not its claim."""
    a = manager(tmp_path, "n1", clock)
    b = manager(tmp_path, "n2", clock)
    lease = a.claim("batch-0000")
    for _ in range(3):                       # healthy heartbeats...
        clock.advance(5.0)
        lease = a.renew(lease)
        assert lease is not None
    died_at = clock.now                      # ...then the writer dies
    clock.advance(10.0)                      # exactly one TTL later:
    assert b.claim("batch-0000") is None     # still within the grace
    clock.advance(1e-6)
    taken = b.claim("batch-0000")
    assert taken is not None and taken.node == "n2"
    assert taken.token > lease.token
    assert taken.claimed_at > died_at
    # the dead holder's buffered lease object is now poison
    assert a.renew(lease) is None
    with pytest.raises(StaleLeaseError):
        a.check(lease)


def test_release_only_while_held(tmp_path, clock):
    a = manager(tmp_path, "n1", clock)
    b = manager(tmp_path, "n2", clock)
    lease = a.claim("batch-0000")
    clock.advance(20.0)
    b.claim("batch-0000")
    assert a.release(lease) is False         # fenced: not ours to drop
    assert b.read("batch-0000") is not None  # n2's lease untouched
    current = b.read("batch-0000")
    assert b.release(current) is True
    assert b.read("batch-0000") is None


def test_fence_tokens_survive_a_damaged_counter_file(tmp_path, clock):
    """Losing fence.json must never reissue a token: the watermark is
    recovered from the surviving lease files."""
    a = manager(tmp_path, "n1", clock)
    lease = a.claim("batch-0000")
    a.claim("batch-0001")
    os.unlink(os.path.join(a.lease_dir, FENCE_NAME))
    clock.advance(11.0)
    b = manager(tmp_path, "n2", clock)
    taken = b.claim("batch-0000")
    assert taken.token > 2                   # strictly above both issued


def test_damaged_lease_record_is_claimable_not_fatal(tmp_path, clock):
    a = manager(tmp_path, "n1", clock)
    lease = a.claim("batch-0000")
    with open(a._path("batch-0000"), "w") as handle:
        handle.write('{"garbage": tru')
    with pytest.warns(RuntimeWarning):
        assert a.read("batch-0000") is None
    b = manager(tmp_path, "n2", clock)
    with pytest.warns(RuntimeWarning):
        taken = b.claim("batch-0000")
    assert taken is not None
    # the fencing token still moved forward (recovered watermark), so
    # the original holder cannot commit over the takeover
    assert taken.token > 0
    with pytest.raises(StaleLeaseError):
        a.check(lease)


def test_ttl_must_be_positive(tmp_path, clock):
    with pytest.raises(ValueError):
        LeaseManager(str(tmp_path), "n1", ttl_s=0.0, clock=clock)


def test_lease_record_roundtrip():
    lease = Lease(resource="batch-0000", node="n1", token=3,
                  claimed_at=1.0, expires_at=11.0, renewals=2)
    assert Lease.from_record(lease.to_record()) == lease
