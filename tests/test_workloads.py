"""Workload scenarios: construction, parameter effects, customer generator."""

import pytest

from repro.soc.config import tc1797_config
from repro.soc.kernel import signals
from repro.workloads import (BodyGatewayScenario, CustomerGenerator,
                             EngineControlScenario, TransmissionScenario)

SCENARIOS = [EngineControlScenario, TransmissionScenario,
             BodyGatewayScenario]


@pytest.mark.parametrize("scenario_cls", SCENARIOS)
def test_scenarios_run_and_retire(scenario_cls):
    device = scenario_cls().build(tc1797_config(), {}, seed=17)
    device.run(60_000)
    assert device.cpu.retired > 10_000
    assert device.oracle()[signals.IRQ_TAKEN] > 0


@pytest.mark.parametrize("scenario_cls", SCENARIOS)
def test_scenarios_deterministic(scenario_cls):
    def run():
        device = scenario_cls().build(tc1797_config(), {}, seed=17)
        device.run(30_000)
        return device.cpu.retired, device.oracle()
    assert run() == run()


def test_tables_in_dspr_removes_flash_data_traffic():
    def flash_reads(tables_in_dspr):
        device = EngineControlScenario().build(
            tc1797_config(),
            {"tables_in_dspr": tables_in_dspr, "background_blocks": 8},
            seed=17)
        device.run(60_000)
        return device.oracle()[signals.PFLASH_DATA_ACCESS]
    assert flash_reads(True) < flash_reads(False)


def test_isr_in_pspr_moves_fetches_to_scratchpad():
    def pspr_fetches(isr_in_pspr):
        device = EngineControlScenario().build(
            tc1797_config(), {"isr_in_pspr": isr_in_pspr}, seed=17)
        device.run(60_000)
        return device.oracle()[signals.PSPR_ACCESS]
    assert pspr_fetches(True) > pspr_fetches(False)


def test_use_pcp_offloads_adc_service():
    def pcp_work(use_pcp):
        device = EngineControlScenario().build(
            tc1797_config(), {"use_pcp": use_pcp}, seed=17)
        device.run(60_000)
        return device.oracle()[signals.PCP_INSTR]
    assert pcp_work(True) > 0
    assert pcp_work(False) == 0


def test_use_dma_offloads_can_copies():
    def dma_moves(use_dma):
        device = EngineControlScenario().build(
            tc1797_config(), {"use_dma": use_dma, "can_msgs_per_s": 8000},
            seed=17)
        device.run(120_000)
        return device.oracle()[signals.DMA_MOVE]
    assert dma_moves(True) > 0
    assert dma_moves(False) == 0


def test_rpm_scales_crank_interrupt_rate():
    def crank_rate(rpm):
        device = EngineControlScenario().build(
            tc1797_config(), {"rpm": rpm}, seed=17)
        device.run(150_000)
        return device.oracle()[signals.TIMER_EVENT]
    assert crank_rate(6500) > crank_rate(2500)


def test_anomaly_adds_flash_scans():
    def scans(anomaly):
        device = EngineControlScenario().build(
            tc1797_config(), {"anomaly": anomaly, "anomaly_period": 20_000},
            seed=17)
        device.run(100_000)
        return device.oracle()[signals.PFLASH_DATA_ACCESS]
    assert scans(True) > scans(False)


def test_hot_table_ranges_reported():
    scenario = EngineControlScenario()
    ranges = scenario.hot_table_ranges({})
    assert len(ranges) == 2
    assert all(lo < hi for lo, hi in ranges)
    assert scenario.hot_table_ranges({"tables_in_dspr": True}) == ()


def test_customer_generator_deterministic():
    a = CustomerGenerator(seed=42).generate(8)
    b = CustomerGenerator(seed=42).generate(8)
    assert [c.name for c in a] == [c.name for c in b]
    assert [c.params for c in a] == [c.params for c in b]


def test_customer_generator_diversity():
    customers = CustomerGenerator(seed=42).generate(12)
    domains = {c.domain for c in customers}
    assert len(domains) >= 2
    params = [tuple(sorted(c.params.items())) for c in customers]
    assert len(set(params)) > 6     # customers genuinely differ


def test_customer_builds_device():
    customer = CustomerGenerator(seed=42).generate(3)[0]
    device = customer.build(tc1797_config(), seed=5)
    device.run(30_000)
    assert device.cpu.retired > 0


def test_generator_bad_mix_rejected():
    with pytest.raises(ValueError):
        CustomerGenerator(domain_mix=(1, 2))


def test_timer_cells_schedule_injection_edges():
    device = EngineControlScenario().build(
        tc1797_config(), {"rpm": 6000}, seed=17)
    device.run(250_000)
    matches = device.oracle()["tcell.match"]
    crank_events = device.oracle()[signals.TIMER_EVENT]
    assert matches > 0
    # one injection edge armed per crank service (minus in-flight tail)
    assert matches >= crank_events // 2
    cells = next(p for p in device.soc.peripherals
                 if getattr(p, "name", "") == "gpta")
    assert cells.compare[0].late_writes == 0   # deadlines always met


def test_timer_cells_optional():
    device = EngineControlScenario().build(
        tc1797_config(), {"use_timer_cells": False}, seed=17)
    device.run(100_000)
    assert device.oracle().get("tcell.match", 0) == 0
