"""Simulator: tick ordering, run_until, deterministic RNG streams."""

import pytest

from repro.soc.kernel.simulator import Component, Simulator


class Recorder(Component):
    def __init__(self, name, log):
        self.name = name
        self.log = log
        self.resets = 0

    def tick(self, cycle):
        self.log.append((cycle, self.name))

    def reset(self):
        self.resets += 1


def test_tick_order_matches_registration():
    sim = Simulator()
    log = []
    sim.add(Recorder("a", log))
    sim.add(Recorder("b", log))
    sim.step(2)
    assert log == [(0, "a"), (0, "b"), (1, "a"), (1, "b")]
    assert sim.cycle == 2


def test_hub_cycle_published_each_step():
    sim = Simulator()
    seen = []

    class Probe(Component):
        def tick(self, cycle):
            seen.append(sim.hub.cycle == cycle)

    sim.add(Probe())
    sim.step(3)
    assert all(seen)


def test_run_until_counts_cycles():
    sim = Simulator()
    ran = sim.run_until(lambda s: s.cycle >= 17)
    assert ran == 17


def test_run_until_bails_out():
    sim = Simulator()
    with pytest.raises(RuntimeError):
        sim.run_until(lambda s: False, max_cycles=10)


def test_rng_streams_are_independent_and_deterministic():
    sim1 = Simulator(seed=5)
    sim2 = Simulator(seed=5)
    a1 = [sim1.rng("a").random() for _ in range(3)]
    # consuming stream "b" must not disturb stream "a"
    sim2.rng("b").random()
    a2 = [sim2.rng("a").random() for _ in range(3)]
    assert a1 == a2


def test_rng_streams_differ_by_seed():
    assert (Simulator(seed=1).rng("x").random()
            != Simulator(seed=2).rng("x").random())


def test_reset_resets_components_and_clock():
    sim = Simulator()
    log = []
    comp = sim.add(Recorder("a", log))
    sim.step(5)
    stream = sim.rng("a")
    before = stream.random()
    sim.reset()
    assert sim.cycle == 0
    assert comp.resets == 1
    # the same stream object is rewound, not replaced
    assert sim.rng("a") is stream
    assert stream.random() == before
