"""Fault injection: determinism, site coverage, and graceful degradation."""

import json

import pytest

from repro.core.profiling import ProfilingSession, StreamingSession, spec
from repro.core.profiling.export import result_from_json, result_to_json
from repro.ed.device import EdConfig, EmulationDevice
from repro.ed.emem import EmulationMemory
from repro.errors import (BandwidthExceededError, ConfigurationError,
                          CounterSaturationError, FaultInjected, FormatError,
                          ReproError, ResourceExhaustedError,
                          TraceOverrunError, WatchdogExpired)
from repro.faults import (SITE_CATALOGUE, FaultInjector, FaultPlan, FaultRule,
                          SimulationWatchdog, active_injector, fault_point,
                          load_fault_plan)
from repro.fleet import CampaignJob, CampaignRunner
from repro.fleet.worker import execute_job
from repro.mcds import messages as msgs
from repro.mcds.counters import RateCounterStructure
from repro.mcds.trigger import Condition, Trigger
from repro.soc.config import tc1797_config
from repro.soc.cpu import isa
from repro.soc.memory import map as amap

from tests.helpers import make_loop_program


def make_device(seed=13, emem_kb=512, streaming=False, dap_mbps=16.0):
    device = EmulationDevice(EdConfig(
        soc=tc1797_config(), emem_kb=emem_kb,
        dap_bandwidth_mbps=dap_mbps, dap_streaming=streaming), seed=seed)
    device.load_program(make_loop_program(
        alu_per_iter=3,
        load_gen=isa.TableAddr(amap.PFLASH_BASE + 0x10_0000, 4, 2048,
                               locality=0.6)))
    return device


def message(cycle, value=1, source="c"):
    return msgs.TraceMessage(msgs.RATE_SAMPLE, cycle, 64, source, value)


def emem_invariant(emem):
    return (emem.total_stored == emem.message_count + emem.lost_oldest
            + emem.lost_new + emem.corrupt_dropped + emem.injected_drops)


# -- taxonomy ----------------------------------------------------------------

def test_exception_taxonomy_lineage():
    # multiple inheritance keeps pre-taxonomy except-clauses working
    assert issubclass(ConfigurationError, ValueError)
    assert issubclass(FormatError, ValueError)
    for exc in (TraceOverrunError, BandwidthExceededError,
                CounterSaturationError, ResourceExhaustedError,
                WatchdogExpired, FaultInjected):
        assert issubclass(exc, RuntimeError), exc
        assert issubclass(exc, ReproError), exc
    assert FaultInjected("x").retryable
    assert not ConfigurationError("x").retryable
    assert not WatchdogExpired("x").retryable
    assert WatchdogExpired("x", retryable=True).retryable


# -- plans -------------------------------------------------------------------

def test_plan_json_round_trip(tmp_path):
    plan = FaultPlan(seed=7, rules=(
        {"site": "emem.drop", "probability": 0.25, "max_faults": 3},
        {"site": "dap.saturate", "start_hit": 100,
         "params": {"cycles": 500}},
    ), watchdog={"max_cycles": 10_000}, description="drill")
    path = tmp_path / "plan.json"
    path.write_text(plan.to_json())
    loaded = load_fault_plan(str(path))
    assert loaded == plan
    assert loaded.rules[0].probability == 0.25
    assert loaded.watchdog == {"max_cycles": 10_000}


def test_plan_validation():
    with pytest.raises(ConfigurationError, match="unknown fault site"):
        FaultRule(site="nonexistent.site")
    with pytest.raises(ConfigurationError, match="probability"):
        FaultRule(site="emem.drop", probability=1.5)
    with pytest.raises(FormatError, match="unknown fault-rule keys"):
        FaultRule.from_dict({"site": "emem.drop", "chance": 0.5})
    with pytest.raises(FormatError, match="rules"):
        FaultPlan.from_dict({"seed": 3})
    with pytest.raises(FormatError, match="JSON"):
        FaultPlan.from_json("{nope")


def test_fault_point_is_noop_without_injector():
    assert active_injector() is None
    assert fault_point("emem.drop", cycle=0) is None


def test_injector_install_stack():
    plan = FaultPlan(rules=({"site": "emem.drop"},))
    outer = FaultInjector(plan)
    inner = FaultInjector(plan)
    with outer:
        assert active_injector() is outer
        with inner:
            assert active_injector() is inner
        assert active_injector() is outer
    assert active_injector() is None


def test_injection_is_deterministic_given_seed():
    plan = FaultPlan(seed=11, rules=(
        {"site": "emem.drop", "probability": 0.3},))

    def drill(scope):
        emem = EmulationMemory(4)
        with FaultInjector(plan, scope=scope) as injector:
            for i in range(300):
                emem.store(message(i * 10, i))
        return injector.log

    assert drill("job-a") == drill("job-a")        # reproducible
    assert drill("job-a") != drill("job-b")        # but scope-isolated


# -- site coverage -----------------------------------------------------------

def test_emem_drop_site():
    plan = FaultPlan(rules=({"site": "emem.drop", "probability": 0.5},))
    emem = EmulationMemory(4)
    with FaultInjector(plan) as injector:
        for i in range(200):
            emem.store(message(i * 10, i))
    assert injector.injected["emem.drop"] > 0
    assert emem.injected_drops == injector.injected["emem.drop"]
    assert emem_invariant(emem)
    assert any(gap.kind == "injected" for gap in emem.gaps)
    assert emem.stats()["dropped_messages"] == emem.dropped_messages


def test_trace_corrupt_site_detected_by_crc():
    plan = FaultPlan(rules=({"site": "trace.corrupt", "max_faults": 5},))
    emem = EmulationMemory(4)
    with FaultInjector(plan) as injector:
        for i in range(20):
            emem.store(message(i * 10, i))
    assert injector.injected["trace.corrupt"] == 5
    assert emem.corrupt_dropped == 5               # all caught at the sink
    assert emem.message_count == 15
    assert emem_invariant(emem)
    assert any(gap.kind == "corrupt" for gap in emem.gaps)


def test_emem_overflow_site():
    plan = FaultPlan(rules=(
        {"site": "emem.overflow", "start_hit": 50, "max_faults": 1,
         "params": {"messages": 10}},))
    emem = EmulationMemory(4)
    with FaultInjector(plan) as injector:
        for i in range(100):
            emem.store(message(i * 10, i))
    assert injector.injected["emem.overflow"] == 1
    assert emem.injected_drops == 10
    assert emem.message_count == 90
    assert emem_invariant(emem)


def test_dap_saturate_site():
    plan = FaultPlan(rules=(
        {"site": "dap.saturate", "start_hit": 1000, "max_faults": 1,
         "params": {"cycles": 5000}},))
    device = make_device(streaming=True)
    session = StreamingSession(device, [spec.ipc(resolution=256)])
    with FaultInjector(plan) as injector:
        session.run(20_000)
    assert injector.injected["dap.saturate"] == 1
    assert device.dap.saturated_cycles == 5000
    assert device.dap.stats()["saturated_cycles"] == 5000


def test_dap_drop_site_marks_degradation():
    plan = FaultPlan(rules=({"site": "dap.drop", "probability": 0.2},))
    device = make_device(streaming=True)
    session = StreamingSession(device, [spec.ipc(resolution=128)])
    with FaultInjector(plan) as injector:
        stats = session.run(30_000)
        result = session.result()
    assert injector.injected["dap.drop"] > 0
    assert device.dap.dropped_messages == injector.injected["dap.drop"]
    assert stats.messages_lost >= device.dap.dropped_messages
    assert any(gap.source == "dap" for gap in device.trace_gaps())
    assert result.degraded_samples > 0


def test_counter_wrap_site_taints_samples():
    plan = FaultPlan(rules=(
        {"site": "counter.wrap", "probability": 0.25,
         "params": {"mask": 0x3}},))
    device = make_device()
    session = ProfilingSession(device, [spec.ipc(resolution=256)])
    with FaultInjector(plan) as injector:
        result = session.run(20_000)
    assert injector.injected["counter.wrap"] > 0
    structure = session.structures["tc.ipc"]
    assert structure.wraps == injector.injected["counter.wrap"]
    # a wrapped counter is a taint, not a gap: no messages were lost
    assert result.lost_messages == 0
    assert result.degraded_samples == injector.injected["counter.wrap"]


class _Always(Condition):
    def evaluate(self, cycle):
        return True


class _Never(Condition):
    def evaluate(self, cycle):
        return False


def test_trigger_lost_site():
    plan = FaultPlan(rules=({"site": "trigger.lost", "max_faults": 2},))
    trigger = Trigger("t", _Always())
    with FaultInjector(plan) as injector:
        for cycle in range(5):
            trigger.evaluate(cycle)
    assert injector.injected["trigger.lost"] == 2
    assert trigger.lost_injected == 2
    assert trigger.fire_count == 1          # suppressed twice, then fired


def test_trigger_spurious_site():
    plan = FaultPlan(rules=({"site": "trigger.spurious", "max_faults": 1},))
    fired = []
    trigger = Trigger("t", _Never(), on_enter=fired.append)
    with FaultInjector(plan) as injector:
        for cycle in range(5):
            trigger.evaluate(cycle)
    assert injector.injected["trigger.spurious"] == 1
    assert trigger.spurious_injected == 1
    assert fired == [0]                     # fired without a real condition


def test_worker_crash_and_hang_sites():
    job = CampaignJob(name="j1", domain="engine", device="tc1797",
                      cycles=2000).to_dict()
    crash = FaultPlan(rules=(
        {"site": "worker.crash", "match": {"attempt": 0}},)).to_dict()
    with pytest.raises(FaultInjected, match="injected worker crash"):
        execute_job(job, attempt=0, fault_plan=crash)
    payload = execute_job(job, attempt=1, fault_plan=crash)   # match misses
    assert payload["name"] == "j1"
    hang = FaultPlan(rules=(
        {"site": "worker.hang", "max_faults": 1,
         "params": {"seconds": 0.01}},)).to_dict()
    assert execute_job(job, fault_plan=hang)["name"] == "j1"


def test_every_catalogued_site_is_exercised():
    # checkpoint.corrupt / checkpoint.truncated fire in test_checkpoint.py
    covered = {
        "emem.drop", "emem.overflow", "trace.corrupt", "dap.saturate",
        "dap.drop", "counter.wrap", "trigger.lost", "trigger.spurious",
        "worker.crash", "worker.hang",
        "checkpoint.corrupt", "checkpoint.truncated",
    }
    assert covered == set(SITE_CATALOGUE)


# -- counter overflow semantics ----------------------------------------------

def test_counter_saturation_modes():
    from repro.soc.kernel.hub import EventHub

    hub = EventHub()
    sid = hub.register("ev")
    sat = RateCounterStructure("s", hub, ["ev"], resolution=10, width=4)
    hub.emit(sid, 100)                        # > 2^4 - 1
    assert sat.event_count == 15
    assert sat.saturations == 1
    sat.detach()

    wrap = RateCounterStructure("w", hub, ["ev"], resolution=10, width=4,
                                on_overflow="wrap")
    hub.emit(sid, 100)
    assert wrap.event_count == 100 % 16
    assert wrap.wraps == 1
    wrap.detach()

    strict = RateCounterStructure("r", hub, ["ev"], resolution=10, width=4,
                                  on_overflow="raise")
    with pytest.raises(CounterSaturationError):
        hub.emit(sid, 100)
    strict.detach()

    with pytest.raises(ConfigurationError):
        RateCounterStructure("x", hub, ["ev"], resolution=10,
                             on_overflow="explode")


# -- watchdog ----------------------------------------------------------------

def test_watchdog_cycle_deadline_is_fatal():
    device = make_device()
    watchdog = SimulationWatchdog(max_cycles=1000)
    with pytest.raises(WatchdogExpired) as excinfo:
        with watchdog.guard(device):
            device.run(50_000)
    assert not excinfo.value.retryable       # deterministic: never retried
    assert watchdog.expirations == 1
    # the guard removed itself: the device runs normally afterwards
    device.run(100)


def test_watchdog_wall_deadline_is_retryable():
    device = make_device()
    watchdog = SimulationWatchdog(max_wall_s=1e-9, check_interval=1)
    with pytest.raises(WatchdogExpired) as excinfo:
        with watchdog.guard(device):
            device.run(10_000)
    assert excinfo.value.retryable           # host-load dependent


def test_watchdog_validation():
    with pytest.raises(ConfigurationError):
        SimulationWatchdog()
    with pytest.raises(ConfigurationError):
        SimulationWatchdog(max_cycles=0)


# -- happy-path byte identity ------------------------------------------------

def test_installed_empty_plan_changes_nothing():
    baseline = ProfilingSession(
        make_device(), spec.engine_parameter_set()).run(10_000)
    device = make_device()
    session = ProfilingSession(device, spec.engine_parameter_set())
    with FaultInjector(FaultPlan(rules=())) as injector:
        chaos_free = session.run(10_000)
    # hooks evaluated everywhere, zero faults fired, identical bytes
    assert injector.total_injected == 0
    assert result_to_json(chaos_free) == result_to_json(baseline)


def test_degraded_export_round_trips():
    plan = FaultPlan(rules=({"site": "emem.drop", "probability": 0.3},))
    device = make_device()
    session = ProfilingSession(device, [spec.ipc(resolution=128)])
    with FaultInjector(plan):
        result = session.run(20_000)
    assert result.degraded_samples > 0
    text = result_to_json(result)
    loaded = result_from_json(text)
    assert result_to_json(loaded) == text
    assert loaded.degraded_samples == result.degraded_samples
    assert [g.to_list() for g in loaded.gaps] == \
        [g.to_list() for g in result.gaps]


# -- chaos campaign ----------------------------------------------------------

def test_campaign_under_fault_plan_retries_and_quarantines(tmp_path):
    jobs = [CampaignJob(name=f"job{i}", domain="engine", device="tc1797",
                        cycles=2000) for i in range(3)]
    jobs.append(CampaignJob(name="poisoned", domain="no-such-domain",
                            device="tc1797", cycles=2000))
    plan = FaultPlan(rules=(
        {"site": "worker.crash", "match": {"attempt": 0}},))
    runner = CampaignRunner(jobs, workers=0, max_retries=2, backoff_s=0.0,
                            cache_dir=str(tmp_path / "cache"),
                            fault_plan=plan)
    assert runner.cache is None              # chaos must not touch the cache
    report = runner.run()

    quarantined = report.quarantined
    assert [r["job"]["name"] for r in quarantined] == ["poisoned"]
    # attempt 0 was the injected (retryable) crash; attempt 1 hit the
    # deterministic ConfigurationError and quarantined WITHOUT spending
    # the rest of the retry budget (which would read attempts == 3)
    assert quarantined[0]["attempts"] == 2
    assert "unknown workload domain" in quarantined[0]["error"]

    ok = report.ok_records
    assert sorted(r["job"]["name"] for r in ok) == ["job0", "job1", "job2"]
    # every surviving job crashed on attempt 0 (injected) and recovered
    assert all(r["attempts"] == 2 for r in ok)


def test_chaos_campaign_payloads_match_clean_run():
    jobs = [CampaignJob(name=f"job{i}", domain="engine", device="tc1797",
                        cycles=2000) for i in range(2)]
    clean = CampaignRunner(jobs, workers=0).run()
    plan = FaultPlan(rules=(
        {"site": "worker.crash", "match": {"attempt": 0},
         "probability": 1.0},))
    chaos = CampaignRunner(jobs, workers=0, max_retries=2, backoff_s=0.0,
                           fault_plan=plan).run()
    clean_payloads = {r["job_id"]: r["payload"] for r in clean.ok_records}
    chaos_payloads = {r["job_id"]: r["payload"] for r in chaos.ok_records}
    # sim-level injection was off (no sim sites in the plan): surviving
    # retries reproduce the clean payloads exactly
    assert json.dumps(chaos_payloads, sort_keys=True) == \
        json.dumps(clean_payloads, sort_keys=True)
